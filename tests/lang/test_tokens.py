"""Unit tests for the tokenizer."""

import pytest

from repro.errors import ParseError
from repro.lang import tokens as tk


def kinds(source):
    return [t.kind for t in tk.tokenize(source)[:-1]]


def values(source):
    return [t.value for t in tk.tokenize(source)[:-1]]


class TestStructural:
    def test_brackets_and_braces(self):
        assert kinds("( ) [ ] { }") == [
            tk.LPAREN, tk.RPAREN, tk.LBRACKET, tk.RBRACKET,
            tk.LBRACE, tk.RBRACE,
        ]

    def test_arrow_and_negation(self):
        assert kinds("--> -(") == [tk.ARROW, tk.MINUS_LPAREN]

    def test_negative_number_vs_negated_ce(self):
        tokens = tk.tokenize("-5 -(")
        assert tokens[0].kind == tk.NUMBER and tokens[0].value == -5
        assert tokens[1].kind == tk.MINUS_LPAREN


class TestAngleBrackets:
    def test_variable(self):
        token = tk.tokenize("<name>")[0]
        assert token.kind == tk.VAR
        assert token.value == "name"

    def test_predicates_longest_first(self):
        assert values("<=> << <= <> < >> >= >") == [
            "<=>", "<<", "<=", "<>", "<", ">>", ">=", ">",
        ]
        assert kinds("<=> << <= <> < >> >= >") == [
            tk.PRED, tk.LDISJ, tk.PRED, tk.PRED, tk.PRED,
            tk.RDISJ, tk.PRED, tk.PRED,
        ]

    def test_variable_with_dashes_and_digits(self):
        token = tk.tokenize("<x-1>")[0]
        assert token.kind == tk.VAR
        assert token.value == "x-1"


class TestLiterals:
    def test_numbers(self):
        assert values("42 4.5 -3 1e3") == [42, 4.5, -3, 1000.0]

    def test_symbols(self):
        assert values("Jack team-A nil") == ["Jack", "team-A", "nil"]

    def test_quoted_symbols(self):
        token = tk.tokenize("|a b c|")[0]
        assert token.kind == tk.STRING
        assert token.value == "a b c"

    def test_double_quoted_strings(self):
        token = tk.tokenize('"hello world"')[0]
        assert token.value == "hello world"

    def test_unterminated_quote_raises(self):
        with pytest.raises(ParseError):
            tk.tokenize("|abc")


class TestOperatorsAndClauses:
    def test_attribute(self):
        token = tk.tokenize("^team")[0]
        assert token.kind == tk.ATTR
        assert token.value == "team"

    def test_bare_caret_raises(self):
        with pytest.raises(ParseError):
            tk.tokenize("^ 1")

    def test_clause(self):
        token = tk.tokenize(":scalar")[0]
        assert token.kind == tk.CLAUSE
        assert token.value == "scalar"

    def test_infix_operators(self):
        assert kinds("== != + - * / mod") == [tk.OP] * 7

    def test_equals_is_predicate(self):
        assert kinds("=") == [tk.PRED]


class TestCommentsAndPositions:
    def test_comments_skipped(self):
        assert values("a ; comment here\nb") == ["a", "b"]

    def test_line_and_column_tracking(self):
        tokens = tk.tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_eof_token_terminates(self):
        tokens = tk.tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == tk.EOF
