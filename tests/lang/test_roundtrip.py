"""Round-trip property: ``parse(format(rule)) == rule``.

Hypothesis generates random rule ASTs within the language's rules and
checks the printer and parser are exact inverses.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import ast
from repro.lang.parser import parse_rule
from repro.lang.printer import format_rule

_identifiers = st.from_regex(r"[a-z][a-z0-9-]{0,6}", fullmatch=True).filter(
    lambda s: not s.endswith("-")
)
_var_names = st.from_regex(r"[A-Za-z][A-Za-z0-9]{0,5}", fullmatch=True)
_constants = st.one_of(
    st.integers(-999, 999),
    _identifiers,
)


@st.composite
def checks(draw):
    predicate = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
    if predicate == "=" and draw(st.booleans()) and draw(st.booleans()):
        values = draw(st.lists(_constants, min_size=1, max_size=3))
        return ast.Check("=", ast.Disjunction(values))
    if draw(st.booleans()):
        return ast.Check(predicate, ast.Var(draw(_var_names)))
    return ast.Check(predicate, ast.Const(draw(_constants)))


@st.composite
def attr_tests(draw):
    attribute = draw(_identifiers)
    number = draw(st.integers(1, 2))
    return ast.AttrTest(
        attribute, [draw(checks()) for _ in range(number)]
    )


@st.composite
def condition_elements(draw, set_oriented=None):
    wme_class = draw(_identifiers)
    tests = draw(st.lists(attr_tests(), max_size=3, unique_by=lambda t: t.attribute))
    if set_oriented is None:
        set_oriented = draw(st.booleans())
    element_var = None
    if draw(st.booleans()):
        element_var = "Elem" + draw(_var_names)
    return ast.ConditionElement(
        wme_class, tests, set_oriented=set_oriented, element_var=element_var
    )


@st.composite
def simple_rules(draw):
    name = draw(_identifiers)
    ces = draw(st.lists(condition_elements(), min_size=1, max_size=3))
    actions = [ast.WriteAction([ast.Const("fired")])]
    return ast.Rule(name, ces, actions)


class TestRoundTrip:
    @given(simple_rules())
    @settings(max_examples=150, deadline=None)
    def test_parse_inverts_format(self, rule):
        assert parse_rule(format_rule(rule)) == rule

    def test_paper_rules_roundtrip(self):
        sources = [
            """(p compete
                 (player ^name <n1> ^team A)
                 (player ^name <n2> ^team B)
                 --> (write <n1> <n2>))""",
            """(p SwitchTeams
                 { [player ^team A] <ATeam> }
                 { [player ^team B] <BTeam> }
                 :test ((count <ATeam>) == (count <BTeam>))
                 --> (set-modify <ATeam> ^team B)
                     (set-modify <BTeam> ^team A))""",
            """(p RemoveDups
                 { [player ^name <n> ^team <t>] <P> }
                 :scalar (<n> <t>)
                 :test ((count <P>) > 1)
                 --> (bind <First> true)
                     (foreach <P> descending
                       (if (<First> == true)
                         (bind <First> false)
                        else
                         (remove <P>))))""",
            """(p GroupByTeam
                 [player ^team <t> ^name <n>]
                 --> (foreach <t> (write <t>)
                       (foreach <n> (write <n>))))""",
        ]
        for source in sources:
            rule = parse_rule(source)
            assert parse_rule(format_rule(rule)) == rule
