"""Unit tests for the pretty-printer beyond the round-trip property."""

import pytest

from repro.lang import ast
from repro.lang.parser import parse_rule
from repro.lang.printer import (
    format_action,
    format_ce,
    format_expression,
    format_rule,
)


class TestExpressionFormatting:
    def test_constants(self):
        assert format_expression(ast.Const(5)) == "5"
        assert format_expression(ast.Const("sym")) == "sym"

    def test_quoting_of_awkward_symbols(self):
        assert format_expression(ast.Const("two words")) == "|two words|"
        assert format_expression(ast.Const("")) == "||"
        assert format_expression(ast.Const("a(b")) == "|a(b|"

    def test_variables_and_aggregates(self):
        assert format_expression(ast.Var("x")) == "<x>"
        assert format_expression(ast.Aggregate("count", "S")) \
            == "(count <S>)"
        assert format_expression(ast.Aggregate("sum", "S", "qty")) \
            == "(sum <S> ^qty)"

    def test_nested_binops(self):
        expression = ast.BinOp(
            "-",
            ast.Aggregate("max", "S", "v"),
            ast.Aggregate("min", "S", "v"),
        )
        assert format_expression(expression) \
            == "((max <S> ^v) - (min <S> ^v))"

    def test_unary(self):
        assert format_expression(
            ast.UnaryOp("not", ast.Const("true"))
        ) == "(not true)"


class TestCeFormatting:
    def test_regular_set_negated(self):
        assert format_ce(parse_rule("(p r (a ^x 1) --> (halt))").ces[0]) \
            == "(a ^x 1)"
        assert format_ce(parse_rule("(p r [a ^x 1] --> (halt))").ces[0]) \
            == "[a ^x 1]"
        assert format_ce(
            parse_rule("(p r (g) -(a ^x 1) --> (halt))").ces[1]
        ) == "-(a ^x 1)"

    def test_element_binding(self):
        ce = parse_rule("(p r { [a] <S> } --> (halt))").ces[0]
        assert format_ce(ce) == "{ [a] <S> }"

    def test_predicates_and_conjunctions(self):
        ce = parse_rule("(p r (a ^n { > 2 <= 9 }) --> (halt))").ces[0]
        assert format_ce(ce) == "(a ^n { > 2 <= 9 })"

    def test_disjunction(self):
        ce = parse_rule("(p r (a ^c << red 3 >>) --> (halt))").ces[0]
        assert format_ce(ce) == "(a ^c << red 3 >>)"


class TestActionFormatting:
    def test_all_simple_actions(self):
        rule = parse_rule(
            "(p r { (a ^v <v>) <A> } --> "
            "(make out ^v <v>) (remove <A>) (modify 1 ^v 2) "
            "(write x) (bind <b> 1) (halt))"
        )
        rendered = [format_action(action) for action in rule.actions]
        assert rendered == [
            "(make out ^v <v>)",
            "(remove <A>)",
            "(modify 1 ^v 2)",
            "(write x)",
            "(bind <b> 1)",
            "(halt)",
        ]

    def test_foreach_indents_body(self):
        rule = parse_rule(
            "(p r [a ^v <v>] --> (foreach <v> descending (write <v>)))"
        )
        text = format_action(rule.actions[0])
        assert text.startswith("(foreach <v> descending\n")
        assert "  (write <v>)" in text

    def test_if_else(self):
        rule = parse_rule(
            "(p r (a ^v <v>) --> (if (<v> > 1) (halt) else (write no)))"
        )
        text = format_action(rule.actions[0])
        assert "else" in text

    def test_unknown_action_type_raises(self):
        with pytest.raises(TypeError):
            format_action(object())


class TestRuleFormatting:
    def test_structure(self):
        rule = parse_rule(
            "(p r [a ^v <v>] :scalar (<v>) --> (write <v>))"
        )
        text = format_rule(rule)
        assert text.splitlines()[0] == "(p r"
        assert "  :scalar (<v>)" in text
        assert "  -->" in text
        assert text.endswith("(write <v>))")

    def test_test_clause_rendered(self):
        rule = parse_rule(
            "(p r { [a] <S> } :test ((count <S>) > 1) --> (halt))"
        )
        assert ":test (((count <S>) > 1))" in format_rule(rule)
