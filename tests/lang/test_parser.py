"""Unit tests for the rule parser."""

import pytest

from repro.errors import ParseError, RuleError
from repro.lang import ast
from repro.lang.parser import parse_expression, parse_program, parse_rule


class TestBasicRules:
    def test_minimal_rule(self):
        rule = parse_rule("(p r1 (goal) --> (halt))")
        assert rule.name == "r1"
        assert len(rule.ces) == 1
        assert isinstance(rule.actions[0], ast.HaltAction)

    def test_arrow_optional(self):
        with_arrow = parse_rule("(p r (goal) --> (halt))")
        without = parse_rule("(p r (goal) (halt))")
        assert with_arrow == without

    def test_constant_and_variable_tests(self):
        rule = parse_rule(
            "(p r (player ^team A ^name <n>) --> (write <n>))"
        )
        ce = rule.ces[0]
        assert ce.wme_class == "player"
        team_test, name_test = ce.tests
        assert team_test.checks[0] == ast.Check("=", ast.Const("A"))
        assert name_test.checks[0] == ast.Check("=", ast.Var("n"))

    def test_predicates(self):
        rule = parse_rule("(p r (item ^n > 5 ^m <> nil) --> (halt))")
        checks = [t.checks[0] for t in rule.ces[0].tests]
        assert checks[0].predicate == ">"
        assert checks[0].operand == ast.Const(5)
        assert checks[1].predicate == "<>"

    def test_conjunctive_value_restriction(self):
        rule = parse_rule("(p r (item ^n { > 2 < 10 }) --> (halt))")
        checks = rule.ces[0].tests[0].checks
        assert len(checks) == 2
        assert checks[0].predicate == ">"
        assert checks[1].predicate == "<"

    def test_disjunction(self):
        rule = parse_rule("(p r (item ^c << red green 3 >>) --> (halt))")
        operand = rule.ces[0].tests[0].checks[0].operand
        assert operand == ast.Disjunction(("red", "green", 3))


class TestSetOrientedSyntax:
    def test_set_ce(self):
        rule = parse_rule("(p r [player ^team A] --> (halt))")
        assert rule.ces[0].set_oriented
        assert rule.is_set_oriented

    def test_element_binding_both_orders(self):
        after = parse_rule("(p r { (goal) <G> } --> (remove <G>))")
        before = parse_rule("(p r { <G> (goal) } --> (remove <G>))")
        assert after.ces[0].element_var == "G"
        assert after == before

    def test_scalar_clause(self):
        rule = parse_rule(
            "(p r [player ^name <n> ^team <t>] :scalar (<n> <t>) "
            "--> (halt))"
        )
        assert rule.scalar_vars == ("n", "t")

    def test_test_clause(self):
        rule = parse_rule(
            "(p r { [player] <P> } :test ((count <P>) > 1) --> (halt))"
        )
        assert isinstance(rule.test, ast.BinOp)
        assert rule.test.op == ">"
        assert rule.test.left == ast.Aggregate("count", "P")

    def test_test_requires_set_ce(self):
        with pytest.raises(RuleError):
            parse_rule(
                "(p r { (goal) <G> } :test ((count <G>) > 1) --> (halt))"
            )


class TestNegation:
    def test_negated_ce(self):
        rule = parse_rule("(p r (goal) -(done) --> (halt))")
        assert rule.ces[1].negated

    def test_all_negated_lhs_rejected(self):
        with pytest.raises(RuleError):
            parse_rule("(p r -(done) --> (halt))")


class TestActions:
    def test_make_with_expressions(self):
        rule = parse_rule(
            "(p r (c ^n <n>) --> (make item ^v (<n> + 1) ^w done))"
        )
        action = rule.actions[0]
        assert isinstance(action, ast.MakeAction)
        assert action.assignments[0][1] == ast.BinOp(
            "+", ast.Var("n"), ast.Const(1)
        )

    def test_remove_expands_multiple_targets(self):
        rule = parse_rule("(p r (a) (b) --> (remove 1 2))")
        assert [a.target for a in rule.actions] == [1, 2]

    def test_modify_by_ordinal_and_var(self):
        rule = parse_rule(
            "(p r { (a) <X> } --> (modify <X> ^n 1) (modify 1 ^n 2))"
        )
        assert rule.actions[0].target == "X"
        assert rule.actions[1].target == 1

    def test_write_with_crlf(self):
        rule = parse_rule("(p r (a) --> (write hello (crlf) world))")
        arguments = rule.actions[0].arguments
        assert arguments[1] == ast.Const("\n")

    def test_set_actions(self):
        rule = parse_rule(
            "(p r { [a] <S> } --> (set-modify <S> ^x 1) (set-remove <S>))"
        )
        assert isinstance(rule.actions[0], ast.SetModifyAction)
        assert isinstance(rule.actions[1], ast.SetRemoveAction)

    def test_foreach_orders(self):
        rule = parse_rule(
            "(p r [a ^v <v>] --> "
            "(foreach <v> (write <v>)) "
            "(foreach <v> ascending (write <v>)) "
            "(foreach <v> descending (write <v>)))"
        )
        assert [a.order for a in rule.actions] == [
            "default", "ascending", "descending",
        ]

    def test_nested_foreach(self):
        rule = parse_rule(
            "(p r [a ^x <x> ^y <y>] --> "
            "(foreach <x> (foreach <y> (write <x> <y>))))"
        )
        outer = rule.actions[0]
        assert isinstance(outer.body[0], ast.ForeachAction)

    def test_if_else(self):
        rule = parse_rule(
            "(p r (a ^n <n>) --> "
            "(if (<n> > 3) (write big) else (write small)))"
        )
        action = rule.actions[0]
        assert len(action.then_body) == 1
        assert len(action.else_body) == 1

    def test_bind(self):
        rule = parse_rule("(p r (a) --> (bind <x> (1 + 2)))")
        assert rule.actions[0] == ast.BindAction(
            "x", ast.BinOp("+", ast.Const(1), ast.Const(2))
        )

    def test_unknown_action_raises(self):
        with pytest.raises(ParseError):
            parse_rule("(p r (a) --> (explode))")


class TestExpressions:
    def test_precedence(self):
        expression = parse_expression("1 + 2 * 3")
        assert expression == ast.BinOp(
            "+",
            ast.Const(1),
            ast.BinOp("*", ast.Const(2), ast.Const(3)),
        )

    def test_comparison_of_aggregates(self):
        expression = parse_expression("(count <A>) == (count <B>)")
        assert expression.op == "=="
        assert expression.left == ast.Aggregate("count", "A")

    def test_boolean_connectives(self):
        expression = parse_expression("(1 < 2) and not (3 < 2)")
        assert expression.op == "and"
        assert isinstance(expression.right, ast.UnaryOp)

    def test_aggregate_with_attribute(self):
        expression = parse_expression("(sum <Items> ^value)")
        assert expression == ast.Aggregate("sum", "Items", "value")

    def test_angle_predicates_map_to_infix(self):
        assert parse_expression("<x> <> 1").op == "!="
        assert parse_expression("<x> = 1").op == "=="

    def test_trailing_garbage_raises(self):
        with pytest.raises(ParseError):
            parse_expression("1 + 2 extra")


class TestPrograms:
    def test_program_with_literalize(self):
        literalizations, rules = parse_program(
            """
            (literalize player name team)
            (p r (player ^name <n>) --> (write <n>))
            """
        )
        assert literalizations == [("player", ["name", "team"])]
        assert rules[0].name == "r"

    def test_unknown_toplevel_raises(self):
        with pytest.raises(ParseError):
            parse_program("(frobnicate)")

    def test_unterminated_rule_raises(self):
        with pytest.raises(ParseError):
            parse_rule("(p r (goal) --> (halt)")

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as info:
            parse_rule("(p r (goal)\n  ^oops)")
        assert "line 2" in str(info.value)
