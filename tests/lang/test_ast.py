"""Unit tests for AST semantics: set-variable classification, validation."""

import pytest

from repro.errors import RuleError
from repro.lang import ast
from repro.lang.parser import parse_rule


class TestSetVariableClassification:
    """Paper section 4.1: when is a PV set-oriented?"""

    def test_var_only_in_set_ces_is_set_oriented(self):
        rule = parse_rule("(p r [player ^name <n>] --> (halt))")
        assert rule.set_variables() == ["n"]

    def test_var_in_regular_ce_is_scalar(self):
        rule = parse_rule(
            "(p r [player ^name <n>] (player ^name <n> ^team B) "
            "--> (halt))"
        )
        assert rule.set_variables() == []
        assert "n" in rule.scalar_variables()

    def test_scalar_clause_forces_scalar(self):
        rule = parse_rule(
            "(p r [player ^name <n> ^team <t>] :scalar (<n>) --> (halt))"
        )
        assert rule.set_variables() == ["t"]
        assert "n" in rule.scalar_variables()

    def test_join_of_two_set_ces_keeps_var_set_oriented(self):
        rule = parse_rule(
            "(p r [player ^name <n> ^team A] [player ^name <n> ^team B] "
            "--> (halt))"
        )
        assert rule.set_variables() == ["n"]


class TestRuleValidation:
    def test_scalar_names_unknown_variable(self):
        with pytest.raises(RuleError):
            parse_rule("(p r [player ^name <n>] :scalar (<zz>) --> (halt))")

    def test_element_var_clashing_with_pv(self):
        with pytest.raises(RuleError):
            parse_rule(
                "(p r { [player ^name <P>] <P> } --> (halt))"
            )

    def test_aggregate_over_scalar_var_rejected(self):
        with pytest.raises(RuleError):
            parse_rule(
                "(p r (player ^name <n>) { [player] <P> } "
                ":test ((count <n>) > 1) --> (halt))"
            )

    def test_negated_set_ce_rejected(self):
        with pytest.raises(RuleError):
            ast.ConditionElement("x", (), set_oriented=True, negated=True)

    def test_negated_ce_cannot_bind_element_var(self):
        with pytest.raises(RuleError):
            ast.ConditionElement("x", (), negated=True, element_var="E")

    def test_empty_lhs_rejected(self):
        with pytest.raises(RuleError):
            ast.Rule("r", [], [])


class TestStructureHelpers:
    def test_specificity_counts_class_and_checks(self):
        rule = parse_rule(
            "(p r (player ^team A ^name <n>) (goal) --> (halt))"
        )
        # player: 1 class + 2 checks; goal: 1 class.
        assert rule.specificity() == 4

    def test_element_vars_map(self):
        rule = parse_rule(
            "(p r { (a) <X> } { [b] <Y> } --> (remove <X>))"
        )
        assert rule.element_vars() == {"X": 0, "Y": 1}

    def test_attribute_of_variable(self):
        rule = parse_rule("(p r (a ^foo <v> ^bar > <v>) --> (halt))")
        assert rule.ces[0].attribute_of_variable("v") == "foo"

    def test_walk_actions_descends(self):
        rule = parse_rule(
            "(p r [a ^v <v>] --> "
            "(foreach <v> (if (<v> > 1) (write deep))))"
        )
        kinds = [type(a).__name__ for a in ast.walk_actions(rule.actions)]
        assert kinds == ["ForeachAction", "IfAction", "WriteAction"]

    def test_walk_aggregates(self):
        rule = parse_rule(
            "(p r { [a] <S> } :test ((count <S>) > 1 and (count <S>) < 9) "
            "--> (halt))"
        )
        aggregates = list(ast.walk_aggregates(rule.test))
        assert len(aggregates) == 2

    def test_positive_and_partitioned_ces(self):
        rule = parse_rule("(p r (a) [b] -(c) --> (halt))")
        assert len(rule.positive_ces()) == 2
        assert len(rule.set_ces()) == 1
        assert len(rule.regular_ces()) == 1


class TestNodeEquality:
    def test_value_equality(self):
        a = ast.Check("=", ast.Const(1))
        b = ast.Check("=", ast.Const(1))
        assert a == b
        assert hash(a) == hash(b)
        assert a != ast.Check("=", ast.Const(2))

    def test_cross_type_inequality(self):
        assert ast.Const(1) != ast.Var("1")

    def test_invalid_nodes(self):
        with pytest.raises(RuleError):
            ast.Aggregate("median", "x")
        with pytest.raises(RuleError):
            ast.BinOp("**", ast.Const(1), ast.Const(2))
        with pytest.raises(RuleError):
            ast.ForeachAction("v", (), order="sideways")
        with pytest.raises(RuleError):
            ast.Check("=", ast.Disjunction((1,))) and ast.Check(
                ">", ast.Disjunction((1,))
            )
