"""The CLI durability surface: --wal-dir, checkpoint, recover."""

import pytest

from repro.cli import ReplSession, main

PROGRAM = """
(literalize reading sensor value)
(p seen (reading ^sensor <s> ^value <v>) --> (write <s>))
"""


def _durable_session(tmp_path, **kwargs):
    session = ReplSession(
        watch=0, wal_dir=str(tmp_path / "wal"), fsync="off", **kwargs
    )
    for line in PROGRAM.strip().splitlines():
        session.execute(line)
    return session


class TestReplDurability:
    def test_checkpoint_command(self, tmp_path):
        session = _durable_session(tmp_path)
        session.execute("make reading ^sensor t1 ^value 10")
        out = session.execute("checkpoint")
        assert "checkpoint written to" in out
        assert (tmp_path / "wal" / "CURRENT").exists()
        session.close()

    def test_checkpoint_without_wal_dir(self):
        session = ReplSession(watch=0)
        assert "durability is off" in session.execute("checkpoint")

    def test_close_flushes_cleanly(self, tmp_path):
        from repro.durability.wal import read_log_tail

        session = _durable_session(tmp_path)
        session.execute("make reading ^sensor t1 ^value 10")
        session.close()
        payloads, _, damage = read_log_tail(tmp_path / "wal")
        assert damage is None
        assert any(p.get("k") == "d" for p in payloads)

    def test_stats_show_wal_counters(self, tmp_path):
        session = _durable_session(tmp_path, profile=True)
        session.execute("make reading ^sensor t1 ^value 10")
        counters = session.profile_stats.counters
        assert counters["wal_appends"] > 0
        assert counters["wal_bytes"] > 0
        session.close()


class TestMainFlags:
    def test_batch_mode_with_checkpoint(self, tmp_path, capsys):
        program = tmp_path / "p.ops"
        program.write_text(PROGRAM)
        rc = main([
            str(program), "--run", "5",
            "--wal-dir", str(tmp_path / "wal"),
            "--fsync", "off", "--checkpoint",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "checkpoint written to" in out
        assert (tmp_path / "wal" / "CURRENT").exists()

    def test_recover_subcommand_round_trip(self, tmp_path, capsys):
        session = _durable_session(tmp_path)
        session.execute("make reading ^sensor t1 ^value 10")
        # Simulated crash: no close().
        rc = main(["recover", str(tmp_path / "wal"), "--run", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "recovered from empty state (no checkpoint)" in out
        assert "1 firing(s)" in out
        assert "t1" in out

    def test_recover_uses_checkpoint(self, tmp_path, capsys):
        session = _durable_session(tmp_path)
        session.execute("make reading ^sensor t1 ^value 10")
        session.execute("checkpoint")
        session.close()
        rc = main([
            "recover", str(tmp_path / "wal"), "--run", "0", "--no-wal",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "recovered from checkpoint" in out
        assert "1 WME(s) restored" in out

    def test_recover_with_sqlite_backend_and_exec_kernels(
        self, tmp_path, capsys
    ):
        # Both overrides on one command line: the recovered dips
        # matcher takes the sqlite backend, and the kernel flag (which
        # only the rete family consumes) must be accepted alongside it
        # rather than rejected as contradictory.
        session = _durable_session(tmp_path)
        session.execute("make reading ^sensor t1 ^value 10")
        session.close()
        rc = main([
            "recover", str(tmp_path / "wal"),
            "--matcher", "dips", "--backend", "sqlite",
            "--kernels", "exec",
            "--run", "5", "--no-wal",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 WME(s) restored" in out or "1 delta(s)" in out
        assert "t1" in out

    def test_recover_rete_exec_kernels_with_backend_flag(
        self, tmp_path, capsys
    ):
        session = _durable_session(tmp_path)
        session.execute("make reading ^sensor t1 ^value 10")
        session.close()
        rc = main([
            "recover", str(tmp_path / "wal"),
            "--matcher", "rete", "--kernels", "exec",
            "--backend", "sqlite",
            "--run", "5", "--no-wal",
        ])
        assert rc == 0
        assert "t1" in capsys.readouterr().out

    def test_recover_missing_directory_fails(self, tmp_path, capsys):
        rc = main(["recover", str(tmp_path / "nothing")])
        assert rc == 1
        assert "no write-ahead log" in capsys.readouterr().err

    def test_recover_resumes_logging_by_default(self, tmp_path, capsys):
        from repro.durability.wal import read_log_tail

        session = _durable_session(tmp_path)
        session.execute("make reading ^sensor t1 ^value 10")
        before, _, _ = read_log_tail(tmp_path / "wal")
        rc = main(["recover", str(tmp_path / "wal"), "--run", "5"])
        assert rc == 0
        after, _, damage = read_log_tail(tmp_path / "wal")
        # The recovered session logged its own meta + firing records.
        assert len(after) > len(before)
        assert damage is None


class TestErrorExitClosesWal:
    def test_profile_json_failure_still_closes_wal(self, tmp_path,
                                                   capsys):
        """The satellite-2 regression: an OSError on the stats
        snapshot path must not leave the WAL unflushed/unclosed."""
        from repro.durability.wal import WriteAheadLog, read_log_tail

        program = tmp_path / "p.ops"
        program.write_text(PROGRAM)
        bad_target = tmp_path / "no" / "such" / "dir" / "stats.json"
        rc = main([
            str(program), "--run", "5",
            "--wal-dir", str(tmp_path / "wal"), "--fsync", "off",
            "--profile-json", str(bad_target),
        ])
        assert rc == 0
        assert "cannot write stats snapshot" in capsys.readouterr().out
        # The log closed cleanly: no tail damage, and it can be
        # reopened for append immediately.
        _, _, damage = read_log_tail(tmp_path / "wal")
        assert damage is None
        WriteAheadLog(tmp_path / "wal", fsync="off").close()

    def test_recover_run_profile_json_failure(self, tmp_path, capsys):
        session = _durable_session(tmp_path)
        session.execute("make reading ^sensor t1 ^value 10")
        session.close()
        bad_target = tmp_path / "no" / "stats.json"
        rc = main([
            "recover", str(tmp_path / "wal"), "--run", "5",
            "--profile-json", str(bad_target),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cannot write stats snapshot" in out
        from repro.durability.wal import read_log_tail

        _, _, damage = read_log_tail(tmp_path / "wal")
        assert damage is None


class TestRecoveredSessionAdoptsStats:
    def test_profile_stats_adopted(self, tmp_path):
        session = _durable_session(tmp_path)
        session.execute("make reading ^sensor t1 ^value 10")
        session.close()
        from repro import RuleEngine
        from repro.engine.stats import MatchStats

        engine = RuleEngine.recover(
            tmp_path / "wal", stats=MatchStats(), durability=False
        )
        adopted = ReplSession(watch=0, engine=engine)
        assert adopted.profile_stats is engine.stats
        report = adopted.execute("profile")
        assert "per-node match work" in report
        assert "replayed_deltas" in report


@pytest.mark.parametrize("fsync", ["always", "batch", "off"])
def test_fsync_flag_accepted(tmp_path, fsync, capsys):
    program = tmp_path / "p.ops"
    program.write_text(PROGRAM)
    rc = main([
        str(program), "--run", "1",
        "--wal-dir", str(tmp_path / "wal"), "--fsync", fsync,
    ])
    assert rc == 0
