"""Unit tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        leaves = [
            errors.ParseError("x"),
            errors.RuleError("x"),
            errors.WorkingMemoryError("x"),
            errors.EngineError("x"),
            errors.ConflictResolutionError("x"),
            errors.DatabaseError("x"),
            errors.SchemaError("x"),
            errors.QueryError("x"),
            errors.SqlError("x"),
            errors.TransactionError("x"),
            errors.TransactionConflict("x"),
            errors.DipsError("x"),
        ]
        for error in leaves:
            assert isinstance(error, errors.ReproError)

    def test_sub_hierarchies(self):
        assert issubclass(errors.SqlError, errors.QueryError)
        assert issubclass(errors.QueryError, errors.DatabaseError)
        assert issubclass(errors.TransactionConflict,
                          errors.TransactionError)
        assert issubclass(errors.ConflictResolutionError,
                          errors.EngineError)

    def test_parse_error_position_formatting(self):
        plain = errors.ParseError("bad token")
        assert str(plain) == "bad token"
        with_line = errors.ParseError("bad token", line=3)
        assert "line 3" in str(with_line)
        full = errors.ParseError("bad token", line=3, column=9)
        assert "line 3, column 9" in str(full)
        assert full.line == 3
        assert full.column == 9

    def test_catchable_at_the_base(self):
        from repro.lang.parser import parse_rule

        with pytest.raises(errors.ReproError):
            parse_rule("(p")
