"""Unit tests for WMEs."""

import pytest

from repro.errors import WorkingMemoryError
from repro.wm import WME


def wme(tag=1, **values):
    return WME("player", values, tag)


class TestWME:
    def test_get_and_default_nil(self):
        element = wme(name="Jack", team="A")
        assert element.get("name") == "Jack"
        assert element.get("missing") == "nil"

    def test_attributes_and_as_dict(self):
        element = wme(name="Jack", team="A")
        assert set(element.attributes()) == {"name", "team"}
        assert element.as_dict() == {"name": "Jack", "team": "A"}
        # as_dict returns a copy.
        element.as_dict()["name"] = "other"
        assert element.get("name") == "Jack"

    def test_with_updates_merges(self):
        element = wme(name="Jack", team="A")
        assert element.with_updates({"team": "B"}) == {
            "name": "Jack",
            "team": "B",
        }
        # Original is untouched (WMEs are immutable).
        assert element.get("team") == "A"

    def test_same_content_ignores_time_tag(self):
        a = wme(tag=1, name="Jack")
        b = wme(tag=9, name="Jack")
        assert a.same_content(b)
        assert a != b  # equality includes the time tag

    def test_equality_and_hash(self):
        a = wme(tag=3, name="Jack")
        b = WME("player", {"name": "Jack"}, 3)
        assert a == b
        assert hash(a) == hash(b)

    def test_rejects_non_value_attribute(self):
        with pytest.raises(WorkingMemoryError):
            WME("player", {"name": [1, 2]}, 1)
        with pytest.raises(WorkingMemoryError):
            WME("player", {3: "x"}, 1)

    def test_repr_contains_tag_and_class(self):
        text = repr(wme(tag=7, name="Jack"))
        assert "7" in text and "player" in text and "^name Jack" in text
