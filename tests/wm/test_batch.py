"""WorkingMemory.batch(): buffering, netting, and observer delivery."""

import pytest

from repro.engine.stats import MatchStats
from repro.errors import WorkingMemoryError
from repro.wm.events import ADD, REMOVE, DeltaBatch, WMEvent
from repro.wm.memory import WorkingMemory
from repro.wm.wme import WME


def _wme(tag, **values):
    return WME("thing", values, tag)


class TestDeltaBatch:
    def test_records_in_order(self):
        batch = DeltaBatch()
        a, b = _wme(1), _wme(2)
        batch.record(ADD, a)
        batch.record(ADD, b)
        batch.record(REMOVE, a)
        events = batch.events()
        assert [(e.sign, e.wme) for e in events] == [(ADD, b)]
        assert batch.submitted == 3
        assert batch.coalesced == 2
        assert len(batch) == 1

    def test_remove_of_preexisting_wme_survives(self):
        batch = DeltaBatch()
        old = _wme(1)
        batch.record(REMOVE, old)
        assert [(e.sign, e.wme) for e in batch.events()] == [(REMOVE, old)]
        assert batch.coalesced == 0

    def test_stable_order_around_tombstones(self):
        batch = DeltaBatch()
        a, b, c = _wme(1), _wme(2), _wme(3)
        batch.record(ADD, a)
        batch.record(ADD, b)
        batch.record(REMOVE, b)
        batch.record(ADD, c)
        assert [(e.sign, e.wme) for e in batch.events()] == [
            (ADD, a), (ADD, c)
        ]


class TestWorkingMemoryBatch:
    def test_mutations_apply_immediately_events_deferred(self):
        wm = WorkingMemory()
        seen = []
        wm.attach(seen.append)
        with wm.batch():
            wme = wm.make("thing", v=1)
            assert wme in wm
            assert len(wm) == 1
            assert seen == []
            assert wm.in_batch
        assert not wm.in_batch
        assert [(e.sign, e.wme) for e in seen] == [(ADD, wme)]

    def test_netting_cancels_make_remove_pair(self):
        wm = WorkingMemory()
        seen = []
        wm.attach(seen.append)
        with wm.batch():
            transient = wm.make("thing", v=1)
            keeper = wm.make("thing", v=2)
            wm.remove(transient)
        assert [(e.sign, e.wme) for e in seen] == [(ADD, keeper)]

    def test_time_tags_stay_monotone_inside_batch(self):
        wm = WorkingMemory()
        with wm.batch():
            first = wm.make("thing")
            second = wm.make("thing")
        assert second.time_tag == first.time_tag + 1

    def test_batch_handler_gets_net_list_plain_observer_gets_replay(self):
        wm = WorkingMemory()
        replayed = []
        batches = []
        wm.attach(replayed.append)
        wm.attach(lambda event: None, on_batch=batches.append)
        with wm.batch():
            a = wm.make("thing", v=1)
            b = wm.make("thing", v=2)
        assert len(batches) == 1
        assert [(e.sign, e.wme) for e in batches[0]] == [(ADD, a), (ADD, b)]
        assert [(e.sign, e.wme) for e in replayed] == [(ADD, a), (ADD, b)]

    def test_nested_batches_flush_once(self):
        wm = WorkingMemory()
        batches = []
        wm.attach(lambda event: None, on_batch=batches.append)
        with wm.batch():
            wm.make("thing", v=1)
            with wm.batch():
                wm.make("thing", v=2)
            assert batches == []
        assert len(batches) == 1
        assert len(batches[0]) == 2

    def test_exception_still_flushes_applied_mutations(self):
        wm = WorkingMemory()
        seen = []
        wm.attach(seen.append)
        with pytest.raises(RuntimeError):
            with wm.batch():
                wm.make("thing", v=1)
                raise RuntimeError("boom")
        assert len(seen) == 1
        assert len(wm) == 1

    def test_empty_batch_delivers_nothing(self):
        wm = WorkingMemory()
        batches = []
        wm.attach(lambda event: None, on_batch=batches.append)
        with wm.batch():
            pass
        assert batches == []

    def test_fully_cancelled_batch_delivers_nothing(self):
        wm = WorkingMemory()
        seen = []
        wm.attach(seen.append)
        with wm.batch():
            wm.remove(wm.make("thing", v=1))
        assert seen == []
        assert len(wm) == 0

    def test_modify_inside_batch_nets_to_single_add(self):
        wm = WorkingMemory()
        seen = []
        wm.attach(seen.append)
        with wm.batch():
            original = wm.make("thing", v=1)
            replacement = wm.modify(original, v=2)
        assert [(e.sign, e.wme) for e in seen] == [(ADD, replacement)]

    def test_detach_removes_batch_handler(self):
        wm = WorkingMemory()
        batches = []
        observer = lambda event: None  # noqa: E731
        wm.attach(observer, on_batch=batches.append)
        wm.detach(observer)
        with wm.batch():
            wm.make("thing")
        assert batches == []

    def test_errors_inside_batch_keep_wm_consistent(self):
        wm = WorkingMemory()
        with wm.batch():
            wme = wm.make("thing")
            wm.remove(wme)
            with pytest.raises(WorkingMemoryError):
                wm.remove(wme)

    def test_stats_counts_submitted_net_coalesced(self):
        wm = WorkingMemory()
        stats = MatchStats()
        with wm.batch(stats=stats):
            transient = wm.make("thing", v=1)
            wm.make("thing", v=2)
            wm.remove(transient)
        assert stats.totals["batches"] == 1
        assert stats.totals["batch_deltas_submitted"] == 3
        assert stats.totals["batch_deltas_net"] == 1
        assert stats.totals["deltas_coalesced"] == 2

    def test_event_equality_reexported(self):
        wme = _wme(1)
        assert WMEvent(ADD, wme) == WMEvent(ADD, wme)
        assert WMEvent(ADD, wme) != WMEvent(REMOVE, wme)
