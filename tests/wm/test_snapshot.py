"""Unit tests for working-memory snapshots."""

import pytest

from repro import RuleEngine
from repro.errors import WorkingMemoryError
from repro.wm import WorkingMemory
from repro.wm.snapshot import dump_wm, load_wm, restore_wm, save_wm


class TestRoundTrip:
    def test_time_tags_preserved(self):
        wm = WorkingMemory()
        wm.make("a", x=1)
        middle = wm.make("a", x=2)
        wm.make("b", y="s")
        wm.remove(middle)  # leaves a tag gap: 1, _, 3
        snapshot = dump_wm(wm)

        clone = WorkingMemory()
        restore_wm(clone, snapshot)
        assert [(w.wme_class, w.time_tag) for w in clone] == [
            ("a", 1), ("b", 3),
        ]

    def test_counter_resumes_past_snapshot(self):
        wm = WorkingMemory()
        wm.make("a")
        wm.make("a")
        clone = WorkingMemory()
        restore_wm(clone, dump_wm(wm))
        fresh = clone.make("a")
        assert fresh.time_tag == 3

    def test_file_round_trip(self, tmp_path):
        wm = WorkingMemory()
        wm.make("player", name="Jack", team="A")
        path = tmp_path / "wm.json"
        save_wm(wm, path)
        clone = WorkingMemory()
        load_wm(clone, path)
        assert clone.find("player", name="Jack")

    def test_restore_requires_empty_wm(self):
        wm = WorkingMemory()
        wm.make("a")
        with pytest.raises(WorkingMemoryError):
            restore_wm(wm, {"version": 1, "wmes": []})

    def test_version_check(self):
        with pytest.raises(WorkingMemoryError):
            restore_wm(WorkingMemory(), {"version": 9, "wmes": []})


class TestEngineRestart:
    def test_engine_resumes_with_identical_behaviour(self, tmp_path):
        """A saved session restores matches AND recency ordering."""
        program = """
        (literalize player name team)
        (p newest (player ^name <n>) --> (write newest is <n>))
        """
        first = RuleEngine()
        first.load(program)
        first.make("player", name="old", team="A")
        first.make("player", name="new", team="B")
        path = tmp_path / "session.json"
        save_wm(first.wm, path)

        second = RuleEngine()
        second.load(program)
        load_wm(second.wm, path)
        assert second.conflict_set_size() == 2
        second.step()
        # Recency survived the restart: the later-made WME dominates.
        assert second.output == ["newest is new"]

    def test_bulk_restore_rides_the_batched_path(self):
        """A 10k-WME restore is one set-oriented pass, not 10k events.

        The batched delta propagation must do measurably less join
        work than replaying the snapshot one make at a time — this is
        the whole point of restoring through ``wm.batch()``.
        """
        from repro import MatchStats

        program = """
        (literalize item owner v)
        (literalize owner name)
        (p pair (item ^owner <o>) (owner ^name <o>) --> (write <o>))
        """
        source = RuleEngine()
        source.load(program)
        with source.batch():
            for i in range(5000):
                source.make("item", owner=f"o{i}", v=i)
                source.make("owner", name=f"o{i}")
        snapshot = dump_wm(source.wm)
        assert len(snapshot["wmes"]) == 10_000

        per_event = RuleEngine(stats=MatchStats())
        per_event.load(program)
        for entry in snapshot["wmes"]:
            per_event.wm._next_tag = entry["tag"]
            per_event.wm.make(entry["class"], **entry["values"])

        batched = RuleEngine(stats=MatchStats())
        batched.load(program)
        restore_wm(batched.wm, snapshot, stats=batched.stats)

        assert (
            batched.conflict_set_size() == per_event.conflict_set_size()
        )
        joins = "join_tests_attempted"
        assert batched.stats.totals[joins] < per_event.stats.totals[joins]
        assert (
            batched.stats.totals["alpha_activations"]
            < per_event.stats.totals["alpha_activations"]
        )
        assert batched.stats.totals["batches"] == 1
        assert batched.stats.totals["batch_deltas_net"] == 10_000

    def test_restore_reports_batch_to_stats(self):
        from repro import MatchStats

        wm = WorkingMemory()
        wm.make("a", x=1)
        wm.make("a", x=2)
        stats = MatchStats()
        clone = WorkingMemory()
        restore_wm(clone, dump_wm(wm), stats=stats)
        assert stats.totals["batches"] == 1
        assert stats.totals["batch_deltas_net"] == 2

    def test_non_monotone_snapshot_refused(self):
        snapshot = {
            "version": 1,
            "next_tag": 3,
            "wmes": [
                {"class": "a", "tag": 2, "values": {}},
                {"class": "a", "tag": 2, "values": {}},
            ],
        }
        with pytest.raises(WorkingMemoryError, match="ingest"):
            restore_wm(WorkingMemory(), snapshot)

    def test_soi_state_rebuilt(self, tmp_path):
        program = """
        (literalize item v)
        (p watch { [item] <S> } :test ((count <S>) >= 2) --> (write go))
        """
        first = RuleEngine()
        first.load(program)
        first.make("item", v=1)
        first.make("item", v=2)
        path = tmp_path / "wm.json"
        save_wm(first.wm, path)

        second = RuleEngine()
        second.load(program)
        load_wm(second.wm, path)
        [inst] = second.conflict_set.instantiations()
        assert len(inst.tokens()) == 2
