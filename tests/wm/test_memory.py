"""Unit tests for working memory: time tags, multiset semantics, events."""

import pytest

from repro.errors import WorkingMemoryError
from repro.wm import WMClassRegistry, WorkingMemory
from repro.wm.events import ADD, REMOVE


class TestRegistry:
    def test_literalize_and_validate(self):
        registry = WMClassRegistry()
        registry.literalize("player", ["name", "team"])
        registry.validate("player", {"name": "Jack"})
        with pytest.raises(WorkingMemoryError):
            registry.validate("player", {"salary": 1})

    def test_undeclared_class_is_unchecked(self):
        registry = WMClassRegistry()
        registry.validate("anything", {"x": 1})  # no error

    def test_redeclaration_must_match(self):
        registry = WMClassRegistry()
        registry.literalize("player", ["name"])
        registry.literalize("player", ["name"])  # identical is fine
        with pytest.raises(WorkingMemoryError):
            registry.literalize("player", ["name", "team"])

    def test_duplicate_attribute_rejected(self):
        registry = WMClassRegistry()
        with pytest.raises(WorkingMemoryError):
            registry.literalize("player", ["name", "name"])


class TestWorkingMemory:
    def test_time_tags_are_monotone(self):
        wm = WorkingMemory()
        first = wm.make("a", x=1)
        second = wm.make("a", x=2)
        assert second.time_tag == first.time_tag + 1
        assert wm.latest_time_tag == second.time_tag

    def test_multiset_allows_identical_content(self):
        wm = WorkingMemory()
        a = wm.make("player", name="Sue")
        b = wm.make("player", name="Sue")
        assert a.same_content(b)
        assert len(wm) == 2

    def test_iteration_in_time_tag_order(self):
        wm = WorkingMemory()
        tags = [wm.make("a", i=i).time_tag for i in range(5)]
        assert [w.time_tag for w in wm] == tags

    def test_remove_by_object_and_by_tag(self):
        wm = WorkingMemory()
        a = wm.make("a", x=1)
        b = wm.make("a", x=2)
        wm.remove(a)
        wm.remove(b.time_tag)
        assert len(wm) == 0

    def test_remove_missing_raises(self):
        wm = WorkingMemory()
        a = wm.make("a", x=1)
        wm.remove(a)
        with pytest.raises(WorkingMemoryError):
            wm.remove(a)
        with pytest.raises(WorkingMemoryError):
            wm.remove(999)

    def test_modify_is_remove_plus_make_with_fresh_tag(self):
        wm = WorkingMemory()
        a = wm.make("player", name="Jack", team="A")
        b = wm.modify(a, team="B")
        assert b.time_tag > a.time_tag
        assert b.get("name") == "Jack"
        assert b.get("team") == "B"
        assert a not in wm
        assert b in wm

    def test_find_with_numeric_coercion(self):
        wm = WorkingMemory()
        wm.make("item", n=2)
        assert len(wm.find("item", n=2.0)) == 1

    def test_event_stream_order(self):
        wm = WorkingMemory()
        events = []
        wm.attach(lambda e: events.append((e.sign, e.wme.time_tag)))
        a = wm.make("a", x=1)
        wm.modify(a, x=2)
        assert events == [
            (ADD, 1),
            (REMOVE, 1),
            (ADD, 2),
        ]

    def test_detach_stops_events(self):
        wm = WorkingMemory()
        events = []
        observer = lambda e: events.append(e)
        wm.attach(observer)
        wm.make("a")
        wm.detach(observer)
        wm.make("a")
        assert len(events) == 1

    def test_clear_emits_removes(self):
        wm = WorkingMemory()
        for _ in range(3):
            wm.make("a")
        removes = []
        wm.attach(lambda e: removes.append(e.sign))
        wm.clear()
        assert removes == [REMOVE] * 3
        assert len(wm) == 0

    def test_declared_class_validation_on_make(self):
        wm = WorkingMemory()
        wm.registry.literalize("player", ["name"])
        with pytest.raises(WorkingMemoryError):
            wm.make("player", salary=3)


class TestIngest:
    def test_pins_historical_tag(self):
        wm = WorkingMemory()
        wme = wm.ingest("a", {"x": 1}, 7)
        assert wme.time_tag == 7
        assert wm.make("a").time_tag == 8

    def test_emits_add_event(self):
        wm = WorkingMemory()
        events = []
        wm.attach(lambda e: events.append((e.sign, e.wme.time_tag)))
        wm.ingest("a", {}, 3)
        assert events == [(ADD, 3)]

    def test_refuses_non_monotone_tag(self):
        wm = WorkingMemory()
        wm.make("a")
        with pytest.raises(WorkingMemoryError, match="ingest"):
            wm.ingest("a", {}, 1)

    def test_validates_against_registry(self):
        wm = WorkingMemory()
        wm.registry.literalize("player", ["name"])
        with pytest.raises(WorkingMemoryError):
            wm.ingest("player", {"salary": 3}, 1)


class TestPrependObserver:
    def test_prepended_observer_sees_events_first(self):
        wm = WorkingMemory()
        order = []
        wm.attach(lambda e: order.append("matcher"))
        wm.attach(lambda e: order.append("wal"), prepend=True)
        wm.make("a")
        assert order == ["wal", "matcher"]

    def test_prepended_batch_handler_flushes_first(self):
        wm = WorkingMemory()
        order = []
        wm.attach(lambda e: order.append("matcher"),
                  on_batch=lambda es: order.append("matcher-batch"))
        wm.attach(lambda e: order.append("wal"),
                  on_batch=lambda es: order.append("wal-batch"),
                  prepend=True)
        with wm.batch():
            wm.make("a")
        assert order == ["wal-batch", "matcher-batch"]
