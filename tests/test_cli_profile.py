"""The CLI profiling surface: ``--profile``, ``--profile-json``, ``profile``."""

import json

from repro.cli import ReplSession, main

PROGRAM = """
(literalize reading sensor value)
(p seen (reading ^sensor <s> ^value <v>) --> (write <s>))
"""


def _loaded_session(**kwargs):
    session = ReplSession(watch=0, **kwargs)
    for line in PROGRAM.strip().splitlines():
        session.execute(line)
    return session


class TestReplProfiling:
    def test_off_by_default(self):
        session = _loaded_session()
        assert session.profile_stats is None
        assert "profiling is off" in session.execute("profile")

    def test_profile_counters_populate(self):
        session = _loaded_session(profile=True)
        session.execute("make reading ^sensor t1 ^value 10")
        session.execute("make reading ^sensor t2 ^value 20")
        session.execute("run")
        totals = session.profile_stats.totals
        assert totals["alpha_activations"] > 0
        assert totals["tokens_created"] > 0
        assert session.profile_stats.cycle_count == 2

    def test_profile_command_prints_tables(self):
        session = _loaded_session(profile=True)
        session.execute("make reading ^sensor t1 ^value 10")
        session.execute("run")
        report = session.execute("profile")
        assert "per-rule firings" in report
        assert "seen" in report
        assert "per-node match work" in report

    def test_report_surfaces_tracer_drops(self):
        session = _loaded_session(profile=True)
        session.engine.tracer.max_records = 1
        from collections import deque

        session.engine.tracer.output = deque(maxlen=1)
        session.execute("make reading ^sensor t1 ^value 10")
        session.execute("make reading ^sensor t2 ^value 20")
        session.execute("run")
        assert "dropped" in session.execute("profile")


class TestMainFlags:
    def test_profile_flag_prints_report(self, tmp_path, capsys):
        program = tmp_path / "p.ops"
        program.write_text(PROGRAM)
        # Batch mode fires nothing (no WMEs) but the report must still
        # print, listing the compiled nodes.
        assert main([str(program), "--run", "5", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "profile — per-node match work" in out
        assert "profile — totals" in out

    def test_profile_json_writes_snapshot(self, tmp_path, capsys):
        program = tmp_path / "p.ops"
        program.write_text(PROGRAM)
        target = tmp_path / "stats.json"
        assert main([
            str(program), "--run", "5", "--profile-json", str(target)
        ]) == 0
        snap = json.loads(target.read_text())
        assert snap["enabled"] is True
        assert any(label.startswith("alpha:") for label in snap["nodes"])
        assert "stats snapshot written" in capsys.readouterr().out

    def test_no_profile_no_report(self, tmp_path, capsys):
        program = tmp_path / "p.ops"
        program.write_text(PROGRAM)
        assert main([str(program), "--run", "1"]) == 0
        assert "profile —" not in capsys.readouterr().out
