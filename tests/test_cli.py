"""Unit tests for the command-line interpreter session."""

import pytest

from repro.cli import ReplSession, _parse_attribute_args, main


@pytest.fixture
def session():
    return ReplSession(watch=0)


class TestDefinitions:
    def test_single_line_rule(self, session):
        output = session.execute("(p r (goal) --> (write done))")
        assert output == "defined r"

    def test_multi_line_rule_buffers(self, session):
        assert session.execute("(p r") == "..."
        assert session.execute("  (goal)") == "..."
        assert session.execute("  --> (write done))") == "defined r"

    def test_literalize(self, session):
        assert session.execute("(literalize goal id)") == "ok"
        assert session.execute("make goal ^id 1").startswith("made")

    def test_parse_error_reported(self, session):
        output = session.execute("(p broken))")
        assert output.startswith("error:")


class TestWorkingMemoryCommands:
    def test_make_wm_remove(self, session):
        session.execute("make player ^team A ^name Jack")
        listing = session.execute("wm")
        assert "Jack" in listing
        assert session.execute("remove 1") == "removed 1 element(s)"
        assert session.execute("wm") == "working memory is empty"

    def test_modify(self, session):
        session.execute("make player ^team A")
        output = session.execute("modify 1 ^team B")
        assert "^team B" in output

    def test_wm_filter_by_class(self, session):
        session.execute("make a ^x 1")
        session.execute("make b ^x 2")
        assert "b" not in session.execute("wm a")

    def test_numeric_coercion(self):
        values = _parse_attribute_args(["^n", "42", "^s", "abc"])
        assert values == {"n": 42, "s": "abc"}

    def test_bad_pairs_reported(self, session):
        output = session.execute("make player team A")
        assert output.startswith("error:")


class TestExecutionCommands:
    def test_run_and_output(self, session):
        session.execute("(p r (goal) --> (write hello))")
        session.execute("make goal")
        output = session.execute("run")
        assert "1 firing(s)" in output
        assert "hello" in output

    def test_step(self, session):
        session.execute("(p r (goal) --> (write hi))")
        session.execute("make goal")
        assert "fired r" in session.execute("step")
        assert session.execute("step") == "nothing to fire"

    def test_cs_listing(self, session):
        session.execute("(p r [goal ^id <i>] --> (write x))")
        session.execute("make goal ^id 1")
        session.execute("make goal ^id 2")
        listing = session.execute("cs")
        assert "r" in listing and "SOI" in listing

    def test_matches(self, session):
        session.execute("(p r (a ^x <v>) (b ^y <v>) --> (write x))")
        session.execute("make a ^x 1")
        session.execute("make b ^y 1")
        output = session.execute("matches r")
        assert "instantiation:" in output
        assert "[1, 2]" in output

    def test_strategy_switch(self, session):
        assert session.execute("strategy mea") == "strategy mea"
        assert session.execute("strategy") == "strategy mea"

    def test_stats(self, session):
        session.execute("(p r (goal) --> (write x))")
        session.execute("make goal")
        session.execute("run")
        stats = session.execute("stats")
        assert "rules: 1" in stats
        assert "firings: 1" in stats


class TestMisc:
    def test_unknown_command(self, session):
        assert "unknown command" in session.execute("frobnicate")

    def test_blank_and_comment_lines(self, session):
        assert session.execute("") == ""
        assert session.execute("; a comment") == ""

    def test_help(self, session):
        assert "commands:" in session.execute("help")

    def test_load_file(self, session, tmp_path):
        program = tmp_path / "prog.ops"
        program.write_text(
            "(literalize goal id)\n(p r (goal) --> (write loaded))\n"
        )
        assert session.execute(f"load {program}") == "loaded 1 rule(s)"

    def test_exit_raises_system_exit(self, session):
        with pytest.raises(SystemExit):
            session.execute("exit")


class TestBatchMode:
    def test_main_batch(self, tmp_path, capsys):
        program = tmp_path / "prog.ops"
        program.write_text(
            """
            (literalize item n)
            (p r (item ^n <n>) --> (write saw <n>))
            """
        )
        # Batch mode loads and runs; with no WMEs it just reports 0.
        assert main([str(program), "--run", "5", "--watch", "0"]) == 0
        captured = capsys.readouterr()
        assert "loaded 1 rule(s)" in captured.out
        assert "0 firing(s)" in captured.out

    def test_main_matcher_choice(self, tmp_path, capsys):
        program = tmp_path / "prog.ops"
        program.write_text("(p r (goal) --> (write hi))")
        assert main(
            [str(program), "--run", "1", "--matcher", "treat"]
        ) == 0


class TestExciseCommand:
    def test_excise_via_repl(self, session):
        session.execute("(p r (goal) --> (write hi))")
        session.execute("make goal")
        assert session.execute("excise r") == "excised r"
        assert "0 firing(s)" in session.execute("run")
        assert session.execute("excise ghost").startswith("error:")


class TestReliabilityCommands:
    def _poison(self, on_error):
        session = ReplSession(watch=0, on_error=on_error)
        session.engine.register_function(
            "explode", lambda *a: (_ for _ in ()).throw(ValueError("boom"))
        )
        session.execute("(literalize item n)")
        session.execute("(p bad (item ^n <n>) --> (call explode))")
        session.execute("make item ^n 1")
        return session

    def test_on_error_show_and_set(self, session):
        assert "default: halt" in session.execute("on-error")
        assert session.execute("on-error skip") == "on-error default: skip"
        assert session.execute("on-error retry:2 bad") \
            == "on-error bad: retry(2, backoff=0.0, skip)"
        listing = session.execute("on-error")
        assert "bad: retry" in listing
        assert session.execute("on-error bogus").startswith("error:")

    def test_run_reports_abandoned_firings(self):
        session = self._poison("skip")
        output = session.execute("run")
        assert "0 firing(s)" in output
        assert "1 firing(s) abandoned" in output

    def test_deadletters_listing(self):
        session = self._poison("skip")
        assert session.execute("deadletters") == "no dead letters"
        session.execute("run")
        listing = session.execute("deadletters")
        assert "bad" in listing and "boom" in listing

    def test_quarantined_and_release(self):
        session = self._poison("quarantine:1")
        assert session.execute("quarantined") \
            == "no rules are quarantined"
        session.execute("run")
        listing = session.execute("quarantined")
        assert "bad" in listing and "1 failure(s)" in listing
        assert session.execute("release ghost") \
            == "ghost is not quarantined"
        assert session.execute("release bad") \
            == "released bad: 1 instantiation(s) back"
        assert session.execute("quarantined") \
            == "no rules are quarantined"

    def test_halt_policy_reports_error(self):
        session = self._poison("halt")
        output = session.execute("run")
        assert output.startswith("error:")
        assert "bad" in output

    def test_main_on_error_flag(self, tmp_path, capsys):
        program = tmp_path / "prog.ops"
        program.write_text(
            """
            (literalize item n)
            (p bad (item ^n <n>) --> (remove 2))
            """
        )
        assert main(
            [str(program), "--run", "5", "--watch", "0",
             "--on-error", "skip"]
        ) == 0
        captured = capsys.readouterr()
        assert "abandoned" not in captured.out  # nothing matched
        assert main(
            [str(program), "--run", "5", "--on-error", "bogus"]
        ) == 1
