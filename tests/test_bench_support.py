"""Unit tests for the bench support package (workloads + harness)."""

from repro import RuleEngine
from repro.bench.harness import format_table, print_table
from repro.bench.workloads import (
    cardinality_set_program,
    cardinality_tuple_program,
    chain_events,
    chain_program,
    duplicate_roster,
    process_set_program,
    process_tuple_program,
    team_roster,
)
from repro.wm import WorkingMemory


class TestGenerators:
    def test_team_roster_deterministic(self):
        assert team_roster(10, seed=3) == team_roster(10, seed=3)
        assert team_roster(10, seed=3) != team_roster(10, seed=4)

    def test_team_roster_spreads_teams(self):
        roster = team_roster(10)
        assert {team for team, _ in roster} == {"A", "B"}
        assert len(roster) == 10

    def test_duplicate_roster_shape(self):
        roster = duplicate_roster(groups=3, group_size=4)
        assert len(roster) == 12
        assert len(set(roster)) == 3

    def test_chain_program_parses_and_scales(self):
        from repro.lang.parser import parse_program

        _, rules = parse_program(chain_program(rule_count=5,
                                               chain_length=4))
        assert len(rules) == 5
        assert all(len(rule.ces) == 4 for rule in rules)

    def test_chain_events_populate_lanes(self):
        wm = WorkingMemory()
        wmes = chain_events(wm, lanes=3, nodes=5, seed=1)
        assert len(wmes) == 15
        lanes = {w.get("lane") for w in wm}
        assert lanes == {0, 1, 2}


class TestWorkloadPrograms:
    def test_process_programs_reach_same_state(self):
        tuple_engine = RuleEngine()
        process_tuple_program(tuple_engine, 12)
        tuple_engine.run(limit=100)
        set_engine = RuleEngine()
        process_set_program(set_engine, 12)
        set_engine.run(limit=100)
        for engine in (tuple_engine, set_engine):
            assert len(engine.wm.find("item", status="done")) == 12
            assert engine.wm.find("control", phase="finished")

    def test_cardinality_threshold_parameter(self):
        engine = RuleEngine()
        cardinality_set_program(engine, 10, threshold=4)
        engine.run(limit=5)
        assert engine.wm.find("verdict")

        engine2 = RuleEngine()
        cardinality_set_program(engine2, 3, threshold=4)
        engine2.run(limit=5)
        assert not engine2.wm.find("verdict")

    def test_cardinality_tuple_counts_correctly(self):
        engine = RuleEngine()
        cardinality_tuple_program(engine, 7)
        engine.run(limit=50)
        counter = engine.wm.find("counter")[0]
        assert counter.get("n") == 7


class TestHarness:
    def test_format_table_alignment(self):
        text = format_table(
            "Title", ["col", "n"], [("a", 1), ("long-value", 20)]
        )
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert lines[1] == "====="
        assert "col" in lines[2] and "n" in lines[2]
        assert len(lines) == 6

    def test_float_rendering(self):
        text = format_table("T", ["x"], [(1.23456,)])
        assert "1.235" in text

    def test_print_table_writes_to_stdout(self, capsys):
        print_table("T", ["a"], [(1,)])
        captured = capsys.readouterr()
        assert "T" in captured.out
