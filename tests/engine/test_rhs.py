"""Unit tests for RHS execution: actions, foreach, scoping, targets."""

import pytest

from repro import RuleEngine
from repro.errors import EngineError


def engine_with(program):
    engine = RuleEngine()
    engine.load(program)
    return engine


class TestClassicActions:
    def test_make_remove_modify(self):
        engine = engine_with(
            """
            (p step (task ^id <i> ^state new)
              -->
              (make log ^task <i>)
              (modify 1 ^state running))
            """
        )
        engine.make("task", id=7, state="new")
        engine.run(limit=5)
        assert engine.wm.find("log", task=7)
        assert engine.wm.find("task", state="running")

    def test_remove_by_ordinal(self):
        engine = engine_with("(p done (task ^state done) --> (remove 1))")
        engine.make("task", state="done")
        engine.run(limit=5)
        assert not engine.wm.find("task")

    def test_remove_by_element_var(self):
        engine = engine_with(
            "(p done { (task ^state done) <T> } --> (remove <T>))"
        )
        engine.make("task", state="done")
        engine.run(limit=5)
        assert not engine.wm.find("task")

    def test_write_renders_values(self):
        engine = engine_with(
            '(p hi (user ^name <n>) --> (write |Hello,| <n> (crlf)))'
        )
        engine.make("user", name="Ada")
        engine.run(limit=2)
        assert engine.output == ["Hello, Ada \n"]

    def test_halt_stops_the_run(self):
        engine = engine_with(
            """
            (p stopper (item) --> (halt))
            """
        )
        engine.make("item")
        engine.make("item")
        assert engine.run(limit=10) == 1
        assert engine.halted

    def test_bind_and_arithmetic(self):
        engine = engine_with(
            """
            (p calc (n ^v <v>)
              -->
              (bind <double> (<v> * 2))
              (make out ^v <double>))
            """
        )
        engine.make("n", v=21)
        engine.run(limit=2)
        assert engine.wm.find("out", v=42)

    def test_removing_twice_is_an_error(self):
        engine = engine_with(
            "(p bad { (task) <T> } --> (remove <T>) (remove <T>))"
        )
        engine.make("task")
        with pytest.raises(EngineError):
            engine.run(limit=2)


class TestSetActions:
    def test_set_modify_applies_to_all_members(self):
        engine = engine_with(
            """
            (p promote { [emp ^grade junior] <E> }
              -->
              (set-modify <E> ^grade senior))
            """
        )
        for _ in range(4):
            engine.make("emp", grade="junior")
        engine.run(limit=2)
        assert len(engine.wm.find("emp", grade="senior")) == 4

    def test_set_remove(self):
        engine = engine_with(
            "(p purge { [tmp] <T> } --> (set-remove <T>))"
        )
        for _ in range(3):
            engine.make("tmp")
        engine.run(limit=2)
        assert not engine.wm.find("tmp")

    def test_set_actions_reject_regular_targets(self):
        engine = engine_with(
            "(p bad { (task) <T> } --> (set-remove <T>))"
        )
        engine.make("task")
        with pytest.raises(EngineError):
            engine.run(limit=2)

    def test_scalar_target_on_set_ce_requires_singleton(self):
        engine = engine_with(
            "(p bad { [item] <S> } --> (remove <S>))"
        )
        engine.make("item")
        engine.make("item")
        with pytest.raises(EngineError):
            engine.run(limit=2)


class TestForeach:
    def test_foreach_pv_value_grouping(self):
        engine = engine_with(
            """
            (p report [sale ^region <r> ^amount <a>]
              -->
              (foreach <r> ascending
                (write <r> total (sum <a>))))
            """
        )
        engine.make("sale", region="west", amount=10)
        engine.make("sale", region="east", amount=5)
        engine.make("sale", region="west", amount=10)
        engine.make("sale", region="west", amount=2)
        engine.run(limit=2)
        # sum over the PV's value domain within each region group.
        assert engine.output == ["east total 5", "west total 12"]

    def test_foreach_ce_member_iteration(self):
        engine = engine_with(
            """
            (p audit { [entry ^v <v>] <E> }
              -->
              (foreach <E> ascending (write entry <v>)))
            """
        )
        engine.make("entry", v="a")
        engine.make("entry", v="b")
        engine.run(limit=2)
        # Inside a CE foreach the CE's PVs are scalars (§6.2).
        assert engine.output == ["entry a", "entry b"]

    def test_foreach_ce_descending_by_time_tag(self):
        engine = engine_with(
            """
            (p audit { [entry ^v <v>] <E> }
              -->
              (foreach <E> descending (write <v>)))
            """
        )
        engine.make("entry", v="first")
        engine.make("entry", v="second")
        engine.run(limit=2)
        assert engine.output == ["second", "first"]

    def test_default_order_is_conflict_set_order(self):
        engine = engine_with(
            """
            (p teams [player ^team <t>]
              -->
              (foreach <t> (write <t>)))
            """
        )
        engine.make("player", team="A")
        engine.make("player", team="B")
        engine.make("player", team="A")
        engine.run(limit=2)
        # Team A holds the newest tag (3) -> dominant group first.
        assert engine.output == ["A", "B"]

    def test_nested_foreach_composes_selections(self):
        engine = engine_with(
            """
            (p matrix [cell ^row <r> ^col <c>]
              -->
              (foreach <r> ascending
                (foreach <c> ascending
                  (write <r> <c>))))
            """
        )
        engine.make("cell", row=1, col="x")
        engine.make("cell", row=1, col="y")
        engine.make("cell", row=2, col="y")
        engine.run(limit=2)
        assert engine.output == ["1 x", "1 y", "2 y"]

    def test_foreach_over_scalar_is_an_error(self):
        engine = engine_with(
            "(p bad (item ^v <v>) [other] --> (foreach <v> (write <v>)))"
        )
        engine.make("item", v=1)
        engine.make("other")
        with pytest.raises(EngineError):
            engine.run(limit=2)


class TestBindScoping:
    def test_bind_updates_enclosing_frame(self):
        """The RemoveDups pattern: a flag flipped inside foreach persists."""
        engine = engine_with(
            """
            (p first-only [item ^v <v>]
              -->
              (bind <seen> false)
              (foreach <v> ascending
                (if (<seen> == false)
                  (bind <seen> true)
                  (write first <v>))))
            """
        )
        for value in (3, 1, 2):
            engine.make("item", v=value)
        engine.run(limit=2)
        assert engine.output == ["first 1"]

    def test_bind_inside_foreach_resets_per_iteration(self):
        """The AlternativeRemoveDups pattern: per-iteration locals."""
        engine = engine_with(
            """
            (p per-group [item ^g <g> ^v <v>]
              -->
              (foreach <g> ascending
                (bind <count> 0)
                (foreach <v> ascending
                  (bind <count> (<count> + 1)))
                (write <g> has <count>)))
            """
        )
        engine.make("item", g="a", v=1)
        engine.make("item", g="a", v=2)
        engine.make("item", g="b", v=9)
        engine.run(limit=2)
        assert engine.output == ["a has 2", "b has 1"]


class TestIfAction:
    def test_if_else_branches(self):
        engine = engine_with(
            """
            (p judge (score ^v <v>)
              -->
              (if (<v> >= 50) (write pass) else (write fail)))
            """
        )
        engine.make("score", v=80)
        engine.run(limit=2)
        engine.make("score", v=20)
        engine.run(limit=2)
        assert engine.output == ["pass", "fail"]


class TestSetVariableScalarUse:
    def test_singleton_domain_reads_as_scalar(self):
        engine = engine_with(
            "(p solo [item ^v <v>] --> (write only <v>))"
        )
        engine.make("item", v=5)
        engine.run(limit=2)
        assert engine.output == ["only 5"]

    def test_plural_domain_as_scalar_is_an_error(self):
        engine = engine_with(
            "(p bad [item ^v <v>] --> (write <v>))"
        )
        engine.make("item", v=1)
        engine.make("item", v=2)
        with pytest.raises(EngineError):
            engine.run(limit=2)

    def test_aggregate_on_rhs(self):
        engine = engine_with(
            "(p size { [item] <S> } --> (make report ^n (count <S>)))"
        )
        for _ in range(5):
            engine.make("item")
        engine.run(limit=2)
        assert engine.wm.find("report", n=5)
