"""Runtime rule surgery semantics: replace_rule, excising quarantined
rules, and the open-batch guard.

``replace_rule`` is excise + add as one engine operation (and one WAL
record — recovery is covered in tests/durability); excising a
quarantined rule must drop its parked conflict-set pool for good, so a
later rule reusing the name never inherits stamps it did not earn.
"""

import pytest

from repro import RuleEngine
from repro.errors import EngineError, RuleError

PROGRAM = """
(literalize item owner v)
(literalize owner name)
(p pair (item ^owner <o>) (owner ^name <o>) --> (write pair <o>))
"""


def _engine():
    engine = RuleEngine()
    engine.load(PROGRAM)
    return engine


class TestReplaceRule:
    def test_swaps_in_place_and_rematches(self):
        engine = _engine()
        engine.make("item", owner="a", v=1)
        engine.make("owner", name="a")
        assert len(engine.conflict_set) == 1
        engine.replace_rule(
            "pair", "(p pair (item ^v {<v> > 10}) --> (write big <v>))"
        )
        # Old instantiations gone, new rule backfilled from live WM.
        assert list(engine.rules) == ["pair"]
        assert len(engine.conflict_set) == 0
        engine.make("item", owner="b", v=99)
        assert [i.rule.name for i in engine.conflict_set] == ["pair"]

    def test_new_name_replaces_old(self):
        engine = _engine()
        engine.make("item", owner="a", v=1)
        new = engine.replace_rule(
            "pair", "(p solo (item ^owner <o>) --> (write solo <o>))"
        )
        assert new.name == "solo"
        assert sorted(engine.rules) == ["solo"]
        assert [i.rule.name for i in engine.conflict_set] == ["solo"]

    def test_unknown_old_rule_raises(self):
        engine = _engine()
        with pytest.raises(RuleError, match="no rule named ghost"):
            engine.replace_rule(
                "ghost", "(p x (item ^v <v>) --> (write <v>))"
            )

    def test_colliding_new_name_raises_without_damage(self):
        engine = _engine()
        engine.add_rule("(p other (owner ^name <o>) --> (write <o>))")
        with pytest.raises(RuleError, match="already defined"):
            engine.replace_rule(
                "pair", "(p other (item ^v <v>) --> (write <v>))"
            )
        # The failed replace touched nothing.
        assert sorted(engine.rules) == ["other", "pair"]

    def test_refraction_not_carried_to_replacement(self):
        engine = _engine()
        engine.make("item", owner="a", v=1)
        engine.make("owner", name="a")
        assert engine.run() == 1
        engine.replace_rule(
            "pair",
            "(p pair (item ^owner <o>) (owner ^name <o>) "
            "--> (write again <o>))",
        )
        # A fresh rule earns fresh eligibility over the same WMEs.
        assert engine.run() == 1


class TestQuarantinedExcise:
    def _quarantined_engine(self):
        engine = RuleEngine(on_error="quarantine:1")
        engine.load(PROGRAM)

        def boom(*args):
            raise RuntimeError("boom")

        engine.register_function("boom", boom)
        engine.add_rule("(p poison (item ^v <v>) --> (call boom <v>))")
        engine.make("item", owner="a", v=1)
        engine.run()
        assert "poison" in engine.quarantined_rules()
        assert engine.conflict_set.parked_rules() == ["poison"]
        return engine

    def test_excise_drops_parked_pool_and_bookkeeping(self):
        engine = self._quarantined_engine()
        engine.excise("poison")
        assert engine.conflict_set.parked_rules() == []
        assert engine.quarantined_rules() == {}
        assert engine.reliability.failure_counts.get("poison") is None

    def test_release_after_excise_raises(self):
        engine = self._quarantined_engine()
        engine.excise("poison")
        with pytest.raises(RuleError, match="no rule named poison"):
            engine.release_rule("poison")

    def test_reused_name_does_not_inherit_parked_stamps(self):
        engine = self._quarantined_engine()
        engine.excise("poison")
        # A later rule reusing the name matches and fires normally: its
        # instantiations reach the live conflict set, not an orphaned
        # parked pool.
        engine.add_rule("(p poison (item ^v <v>) --> (write ok <v>))")
        assert [i.rule.name for i in engine.conflict_set] == ["poison"]
        assert engine.run() == 1
        assert engine.output == ["ok 1"]

    def test_replace_clears_quarantine(self):
        engine = self._quarantined_engine()
        engine.replace_rule(
            "poison", "(p poison (item ^v <v>) --> (write fixed <v>))"
        )
        assert engine.quarantined_rules() == {}
        assert engine.conflict_set.parked_rules() == []
        assert engine.run() == 1
        assert engine.output == ["fixed 1"]

    def test_release_unknown_rule_raises(self):
        engine = _engine()
        with pytest.raises(RuleError, match="no rule named ghost"):
            engine.release_rule("ghost")


class TestOpenBatchGuard:
    @pytest.mark.parametrize("surgery", [
        lambda e: e.add_rule("(p x (item ^v <v>) --> (write <v>))"),
        lambda e: e.excise("pair"),
        lambda e: e.replace_rule(
            "pair", "(p pair (item ^v <v>) --> (write <v>))"
        ),
    ])
    def test_surgery_inside_open_batch_raises(self, surgery):
        engine = _engine()
        with pytest.raises(EngineError, match="open batch"):
            with engine.batch():
                engine.make("item", owner="a", v=1)
                surgery(engine)
        # The batch unwound cleanly; the WME landed, the rules did not
        # double-propagate.
        assert sorted(engine.rules) == ["pair"]
