"""Unit tests for conflict resolution: LEX, MEA, refraction, SOI ranking."""

import pytest

from repro import RuleEngine
from repro.errors import ConflictResolutionError
from repro.engine.conflict import strategy_named


class TestStrategySelection:
    def test_named_strategies(self):
        assert strategy_named("lex").name == "lex"
        assert strategy_named("mea").name == "mea"
        with pytest.raises(ConflictResolutionError):
            strategy_named("random")


class TestLexOrdering:
    def test_recency_dominates(self):
        engine = RuleEngine()
        engine.add_rule("(p r (item ^v <v>) --> (write fired <v>))")
        engine.make("item", v="old")
        engine.make("item", v="new")
        engine.step()
        assert engine.output == ["fired new"]

    def test_specificity_breaks_recency_ties(self):
        engine = RuleEngine()
        engine.add_rule("(p loose (item) --> (write loose))")
        engine.add_rule(
            "(p tight (item ^v 1 ^w 2) --> (write tight))"
        )
        engine.make("item", v=1, w=2)
        engine.step()
        assert engine.output == ["tight"]

    def test_longer_tag_list_dominates_equal_prefix(self):
        engine = RuleEngine()
        engine.add_rule("(p one-ce (b) --> (write one))")
        engine.add_rule("(p two-ce (b) (a) --> (write two))")
        engine.make("a")
        engine.make("b")
        engine.step()
        assert engine.output == ["two"]


class TestMea:
    def test_first_ce_recency_dominates(self):
        # Under LEX the instantiation with the most recent tag overall
        # wins; under MEA the first CE's recency is compared first.
        program = [
            "(p alpha (ctl ^step one) (data) --> (write alpha))",
            "(p beta (ctl ^step two) --> (write beta))",
        ]
        lex = RuleEngine(strategy="lex")
        mea = RuleEngine(strategy="mea")
        for engine in (lex, mea):
            for rule in program:
                engine.add_rule(rule)
            engine.make("ctl", step="one")   # tag 1
            engine.make("ctl", step="two")   # tag 2
            engine.make("data")              # tag 3 (most recent overall)
            engine.step()
        # LEX: alpha has tags (3,1) beating beta's (2).
        assert lex.output == ["alpha"]
        # MEA: beta's first CE (tag 2) beats alpha's first CE (tag 1).
        assert mea.output == ["beta"]


class TestRefraction:
    def test_instantiation_fires_once(self):
        engine = RuleEngine()
        engine.add_rule("(p r (item) --> (write fired))")
        engine.make("item")
        assert engine.run(limit=10) == 1

    def test_new_wme_allows_new_firing(self):
        engine = RuleEngine()
        engine.add_rule("(p r (item) --> (write fired))")
        engine.make("item")
        engine.run(limit=10)
        engine.make("item")
        assert engine.run(limit=10) == 1

    def test_soi_refires_when_content_changes(self):
        """Paper §6: any change to the instantiation re-enables it."""
        engine = RuleEngine()
        engine.add_rule(
            "(p watch { [item] <S> } --> (write saw (count <S>)))"
        )
        engine.make("item")
        engine.run(limit=10)
        engine.make("item")  # the SOI changes -> eligible again
        engine.run(limit=10)
        assert engine.output == ["saw 1", "saw 2"]

    def test_soi_does_not_refire_unchanged(self):
        engine = RuleEngine()
        engine.add_rule(
            "(p watch { [item] <S> } --> (write saw (count <S>)))"
        )
        engine.make("item")
        engine.make("item")
        assert engine.run(limit=10) == 1


class TestConflictSetApi:
    def test_of_rule_and_ordered(self):
        engine = RuleEngine()
        engine.add_rule("(p r1 (a) --> (halt))")
        engine.add_rule("(p r2 (a) (b) --> (halt))")
        engine.make("a")
        engine.make("b")
        assert len(engine.conflict_set.of_rule("r1")) == 1
        ordered = engine.conflict_set.ordered(engine.strategy)
        assert ordered[0].rule.name == "r2"

    def test_counters(self):
        engine = RuleEngine()
        engine.add_rule("(p r (a) --> (halt))")
        wme = engine.make("a")
        engine.remove(wme)
        assert engine.conflict_set.inserts == 1
        assert engine.conflict_set.retracts == 1
