"""RuleEngine.close() idempotence.

The service layer's eviction sweeper and a client disconnect handler
may both close the same session — by design, without coordinating.
Every layer of teardown (engine, durability manager, WAL, working
memory detach) must therefore tolerate double and concurrent close.
"""

from __future__ import annotations

import threading

import pytest

from repro import RuleEngine
from repro.durability import DurabilityConfig
from repro.durability.wal import WriteAheadLog

PROGRAM = """
(literalize item name)
(p note (item ^name <n>) --> (write saw <n>))
"""


@pytest.fixture
def durable_engine(tmp_path):
    engine = RuleEngine(durability=DurabilityConfig(tmp_path / "wal"))
    engine.load(PROGRAM)
    engine.make("item", name="a")
    engine.run()
    return engine


class TestDoubleClose:
    def test_plain_engine(self):
        engine = RuleEngine()
        engine.load(PROGRAM)
        engine.close()
        engine.close()
        assert engine.closed

    def test_durable_engine(self, durable_engine):
        durable_engine.close()
        durable_engine.close()
        assert durable_engine.closed
        assert durable_engine.durability is None

    def test_close_after_close_with_workers(self, tmp_path):
        engine = RuleEngine(
            durability=DurabilityConfig(tmp_path / "wal"), workers=2
        )
        engine.load(PROGRAM)
        engine.close()
        engine.close()

    def test_closed_flag_starts_false(self):
        engine = RuleEngine()
        assert engine.closed is False
        engine.close()
        assert engine.closed is True


class TestConcurrentClose:
    def test_eviction_racing_disconnect(self, durable_engine):
        # Both paths call close() simultaneously; exactly one performs
        # the teardown, neither raises.
        barrier = threading.Barrier(2)
        errors = []

        def closer():
            try:
                barrier.wait(timeout=5)
                durable_engine.close()
            except Exception as error:
                errors.append(error)

        threads = [threading.Thread(target=closer) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert durable_engine.closed

    def test_many_racing_closers(self, tmp_path):
        engine = RuleEngine(durability=DurabilityConfig(tmp_path / "w"))
        engine.load(PROGRAM)
        engine.load_facts([("item", {"name": f"i{i}"}) for i in range(5)])
        barrier = threading.Barrier(8)
        errors = []

        def closer():
            try:
                barrier.wait(timeout=5)
                engine.close()
            except Exception as error:
                errors.append(error)

        threads = [threading.Thread(target=closer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []


class TestWalClose:
    def test_wal_double_close(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal"))
        wal.append({"k": "m", "matcher": "rete", "strategy": "lex"},
                   batch=False)
        wal.close()
        wal.close()

    def test_wm_detach_twice_is_noop(self):
        engine = RuleEngine()
        events = []
        engine.wm.attach(events.append)
        engine.wm.detach(events.append)
        engine.wm.detach(events.append)  # must not raise

    def test_recover_after_double_close(self, tmp_path, durable_engine):
        durable_engine.close()
        durable_engine.close()
        engine = RuleEngine.recover(str(tmp_path / "wal"),
                                    durability=False)
        assert len(engine.wm) == 1
        engine.close()
