"""The observability layer: MatchStats, NullStats, and the tracer ring.

Covers the counter semantics (per-node records, totals, high-water
marks), the reporting surfaces (snapshot / to_json / format_report /
JSON-lines sink), the end-to-end wiring through ``RuleEngine(stats=...)``
for every matcher, and the bounded tracer's dropped-record accounting.
"""

import io
import json

import pytest

from repro import MatchStats, NullStats, RuleEngine
from repro.engine.stats import NULL_STATS
from repro.engine.tracing import Tracer
from repro.match import NaiveMatcher, TreatMatcher

PROGRAM = """
(literalize item owner v)
(literalize owner name)
(p pair (item ^owner <o>) (owner ^name <o>) --> (write <o>))
(p tally { [item ^v <v>] <S> }
  :test ((count <S>) >= 2)
  -->
  (write (count <S>)))
"""


def run_program(stats=None, matcher=None, **engine_kwargs):
    engine = RuleEngine(stats=stats, matcher=matcher, **engine_kwargs)
    engine.load(PROGRAM)
    engine.make("owner", name="ann")
    for value in range(3):
        engine.make("item", owner="ann", v=value)
    engine.run()
    return engine


# ---------------------------------------------------------------------------
# NullStats
# ---------------------------------------------------------------------------


class TestNullStats:
    def test_disabled_and_inert(self):
        null = NullStats()
        assert null.enabled is False
        assert null.register_node("join", "L1") is None
        # Every hook is a silent no-op.
        null.alpha_activation(None, "+", 3)
        null.join_batch(None, 5, 2)
        null.token_created()
        null.snode_mark(None, "+")
        null.cycle("rule", 0.1)
        null.incr("anything")
        assert null.snapshot() == {"enabled": False}
        assert "disabled" in null.format_report()

    def test_default_wiring_is_the_shared_singleton(self):
        engine = RuleEngine()
        assert engine.stats is NULL_STATS
        assert engine.matcher.match_stats is NULL_STATS
        assert engine.tracer.stats is NULL_STATS


# ---------------------------------------------------------------------------
# MatchStats counters
# ---------------------------------------------------------------------------


class TestMatchStatsCounters:
    def test_register_node_labels_are_unique(self):
        stats = MatchStats()
        a = stats.register_node("join", "L0")
        b = stats.register_node("join", "L0")
        plain = stats.register_node("beta")
        assert a != b
        assert a.startswith("join:L0#")
        assert plain.startswith("beta#")
        assert set(stats.nodes) == {a, b, plain}

    def test_join_batch_and_single_tests_accumulate(self):
        stats = MatchStats()
        key = stats.register_node("join", "L1")
        stats.join_batch(key, attempted=4, passed=1)
        stats.join_test(key, passed=True)
        stats.join_test(key, passed=False)
        assert stats.totals["join_tests_attempted"] == 6
        assert stats.totals["join_tests_passed"] == 2
        assert stats.nodes[key]["join_tests"] == 6
        assert stats.nodes[key]["join_passed"] == 2

    def test_memory_high_water_mark(self):
        stats = MatchStats()
        key = stats.register_node("beta", "L0")
        for size in (1, 5, 2):
            stats.memory_size(key, size)
        assert stats.nodes[key]["size"] == 2
        assert stats.nodes[key]["size_hwm"] == 5

    def test_gamma_tracks_groups_and_tokens(self):
        stats = MatchStats()
        key = stats.register_node("snode", "tally")
        stats.gamma_size(key, groups=2, tokens=7)
        stats.gamma_size(key, groups=1, tokens=3)
        node = stats.nodes[key]
        assert (node["groups"], node["groups_hwm"]) == (1, 2)
        assert (node["tokens"], node["tokens_hwm"]) == (3, 7)

    def test_snode_marks_by_kind(self):
        stats = MatchStats()
        key = stats.register_node("snode", "tally")
        for kind in ("+", "+", "-", "time"):
            stats.snode_mark(key, kind)
        assert stats.totals["snode_marks_add"] == 2
        assert stats.totals["snode_marks_remove"] == 1
        assert stats.totals["snode_marks_time"] == 1
        assert stats.nodes[key]["marks_add"] == 2

    def test_probe_and_scan_candidates(self):
        stats = MatchStats()
        stats.index_probe(None, 2)
        stats.full_scan(None, 9)
        assert stats.totals["index_probes"] == 1
        assert stats.totals["index_probe_candidates"] == 2
        assert stats.totals["full_scans"] == 1
        assert stats.totals["full_scan_candidates"] == 9

    def test_cycle_timing_per_rule(self):
        stats = MatchStats()
        stats.cycle("a", 0.5)
        stats.cycle("a", 0.25)
        stats.cycle("b", 1.0)
        assert stats.cycle_count == 3
        assert stats.cycle_time == pytest.approx(1.75)
        assert stats.rules["a"] == {"firings": 2,
                                    "time": pytest.approx(0.75)}

    def test_incr_free_counters(self):
        stats = MatchStats()
        stats.incr("treat_seeded_joins")
        stats.incr("treat_seeded_joins", 4)
        assert stats.counters == {"treat_seeded_joins": 5}


# ---------------------------------------------------------------------------
# Reporting surfaces
# ---------------------------------------------------------------------------


class TestReporting:
    def test_snapshot_round_trips_through_json(self):
        engine = run_program(stats=MatchStats())
        snap = engine.stats.snapshot()
        assert snap["enabled"] is True
        assert json.loads(engine.stats.to_json()) == snap

    def test_snapshot_shapes(self):
        engine = run_program(stats=MatchStats())
        snap = engine.stats.snapshot()
        assert set(snap) == {"enabled", "totals", "counters", "nodes",
                             "rules", "cycles"}
        assert snap["cycles"]["count"] == engine.cycle_count
        assert all(label.count("#") == 1 for label in snap["nodes"])

    def test_format_report_contains_tables(self):
        engine = run_program(stats=MatchStats())
        report = engine.stats.format_report()
        assert "per-rule firings" in report
        assert "per-node match work" in report
        assert "totals" in report
        assert "tally" in report

    def test_jsonl_sink_receives_cycle_events(self, tmp_path):
        sink = io.StringIO()
        stats = MatchStats(event_sink=sink)
        run_program(stats=stats)
        stats.emit_snapshot()
        stats.close()
        events = [json.loads(line) for line in
                  sink.getvalue().splitlines()]
        cycle_events = [e for e in events if e["event"] == "cycle"]
        assert cycle_events
        assert {"cycle", "rule", "duration"} <= set(cycle_events[0])
        assert events[-1]["event"] == "snapshot"
        assert events[-1]["stats"]["enabled"] is True

    def test_sink_by_path_is_owned_and_closed(self, tmp_path):
        path = tmp_path / "events.jsonl"
        stats = MatchStats(event_sink=str(path))
        stats.emit({"event": "ping"})
        stats.close()
        assert json.loads(path.read_text()) == {"event": "ping"}


# ---------------------------------------------------------------------------
# End-to-end wiring
# ---------------------------------------------------------------------------


class TestEngineIntegration:
    def test_rete_counters_are_populated(self):
        engine = run_program(stats=MatchStats())
        totals = engine.stats.totals
        assert totals["alpha_activations"] > 0
        assert totals["join_tests_attempted"] > 0
        assert totals["tokens_created"] > 0
        assert totals["snode_marks_add"] > 0
        kinds = {label.split(":")[0] for label in engine.stats.nodes}
        assert {"alpha", "beta", "join", "snode"} <= kinds

    def test_rule_firings_recorded_with_timing(self):
        engine = run_program(stats=MatchStats())
        assert engine.stats.cycle_count == engine.cycle_count > 0
        assert "tally" in engine.stats.rules
        assert engine.stats.rules["tally"]["time"] >= 0.0

    def test_treat_and_naive_share_the_hook(self):
        for matcher in (TreatMatcher(), NaiveMatcher()):
            engine = run_program(stats=MatchStats(), matcher=matcher)
            totals = engine.stats.totals
            assert totals["join_tests_attempted"] > 0
            assert engine.stats.cycle_count > 0

    def test_stats_attached_after_construction(self):
        """set_stats re-registers already-built nodes (Engine wires an
        externally constructed matcher this way)."""
        from repro.rete import ReteNetwork

        matcher = ReteNetwork()
        engine = RuleEngine(matcher=matcher)
        engine.load(PROGRAM)
        stats = MatchStats()
        matcher.set_stats(stats)
        engine.make("item", owner="x", v=1)
        assert stats.totals["alpha_activations"] > 0


# ---------------------------------------------------------------------------
# Tracer ring buffer
# ---------------------------------------------------------------------------


class TestTracerRing:
    def test_unbounded_by_default(self):
        tracer = Tracer()
        for index in range(100):
            tracer.write(str(index))
        assert len(tracer.output) == 100
        assert tracer.dropped_records == 0

    def test_ring_drops_oldest_and_counts(self):
        stats = MatchStats()
        tracer = Tracer(max_records=3, stats=stats)
        for index in range(5):
            tracer.write(str(index))
        assert list(tracer.output) == ["2", "3", "4"]
        assert tracer.dropped_output == 2
        assert tracer.dropped_records == 2
        assert stats.counters["tracer_dropped_output"] == 2

    def test_firing_records_also_ring(self):
        engine = run_program(stats=MatchStats(), trace_limit=2)
        tracer = engine.tracer
        assert len(tracer.firings) <= 2
        total = len(tracer.firings) + tracer.dropped_firings
        assert total == engine.cycle_count
        if tracer.dropped_firings:
            assert (engine.stats.counters["tracer_dropped_firings"]
                    == tracer.dropped_firings)

    def test_clear_resets_drop_counters(self):
        tracer = Tracer(max_records=1)
        tracer.write("a")
        tracer.write("b")
        assert tracer.dropped_output == 1
        tracer.clear()
        assert tracer.dropped_records == 0
        assert len(tracer.output) == 0
