"""RHS edge cases: ordinals inside foreach, halt placement, snapshots."""

import pytest

from repro import RuleEngine
from repro.errors import EngineError


def engine_with(program):
    engine = RuleEngine()
    engine.load(program)
    return engine


class TestOrdinalTargets:
    def test_ordinal_to_scalar_ce_in_set_rule(self):
        engine = engine_with(
            """
            (p done { (ctl ^state run) <C> } [item]
              -->
              (modify 1 ^state finished))
            """
        )
        engine.make("ctl", state="run")
        engine.make("item")
        engine.run(limit=2)
        assert engine.wm.find("ctl", state="finished")

    def test_ordinal_to_set_ce_inside_foreach(self):
        # Inside a CE-foreach the set CE is narrowed to one member, so
        # an ordinal target resolves.
        engine = engine_with(
            """
            (p tag { [item ^v <v>] <S> }
              -->
              (foreach <S> ascending
                (modify 1 ^v 0)))
            """
        )
        engine.make("item", v=1)
        engine.make("item", v=2)
        engine.run(limit=2)
        assert len(engine.wm.find("item", v=0)) == 2

    def test_ordinal_out_of_range(self):
        engine = engine_with("(p r (a) --> (remove 5))")
        engine.make("a")
        with pytest.raises(EngineError):
            engine.run(limit=1)

    def test_remove_target_unknown_var(self):
        engine = engine_with("(p r (a) --> (remove <nope>))")
        engine.make("a")
        with pytest.raises(EngineError):
            engine.run(limit=1)


class TestSnapshotSemantics:
    def test_foreach_iterates_fire_time_relation(self):
        """Mid-firing WM changes do not disturb the iteration (§6)."""
        engine = engine_with(
            """
            (p grow [seed ^v <v>]
              -->
              (foreach <v> ascending
                (make sprout ^from <v>)))
            """
        )
        engine.make("seed", v=1)
        engine.make("seed", v=2)
        engine.run(limit=1)
        # The makes during iteration did not add iterations.
        assert len(engine.wm.find("sprout")) == 2

    def test_set_modify_snapshot(self):
        # set-modify's new WMEs re-enter the SOI but do not get
        # re-modified within the same firing.
        engine = engine_with(
            """
            (p bump { [item ^n <n>] <S> }
              :test ((count <S>) == 2)
              -->
              (set-modify <S> ^n 9))
            """
        )
        engine.make("item", n=1)
        engine.make("item", n=2)
        engine.run(limit=1)
        assert len(engine.wm.find("item", n=9)) == 2


class TestHaltPlacement:
    def test_halt_finishes_current_rhs(self):
        engine = engine_with(
            "(p r (a) --> (halt) (write after-halt))"
        )
        engine.make("a")
        engine.run()
        assert engine.output == ["after-halt"]
        assert engine.halted

    def test_halt_inside_foreach(self):
        engine = engine_with(
            """
            (p r [item ^v <v>]
              -->
              (foreach <v> ascending
                (write <v>)
                (halt)))
            (p other (item) --> (write never))
            """
        )
        engine.make("item", v=1)
        engine.make("item", v=2)
        engine.run()
        # The foreach completes (both values) but no further rule fires.
        assert engine.output == ["1", "2"]


class TestWriteEdgeCases:
    def test_write_no_arguments(self):
        engine = engine_with("(p r (a) --> (write))")
        engine.make("a")
        engine.run(limit=1)
        assert engine.output == [""]

    def test_write_float_formatting(self):
        engine = engine_with(
            "(p r (a ^x <x>) --> (write (<x> / 2)))"
        )
        engine.make("a", x=5)
        engine.run(limit=1)
        assert engine.output == ["2.5"]


class TestNestedForeachTargets:
    def test_set_remove_in_narrowed_scope(self):
        """set-remove inside foreach removes only the current group."""
        engine = engine_with(
            """
            (p purge-first { [item ^g <g>] <S> }
              -->
              (bind <done> false)
              (foreach <g> ascending
                (if (<done> == false)
                  (set-remove <S>)
                  (bind <done> true))))
            """
        )
        engine.make("item", g="a")
        engine.make("item", g="a")
        engine.make("item", g="b")
        engine.run(limit=1)
        remaining = [w.get("g") for w in engine.wm.find("item")]
        assert remaining == ["b"]
