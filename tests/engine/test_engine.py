"""Unit tests for the RuleEngine facade and tracing."""

import pytest

from repro import RuleEngine
from repro.errors import RuleError, WorkingMemoryError


class TestProgramLoading:
    def test_load_program(self):
        engine = RuleEngine()
        rules = engine.load(
            """
            (literalize item kind)
            (p r (item ^kind x) --> (write found))
            """
        )
        assert [r.name for r in rules] == ["r"]
        assert engine.wm.registry.is_declared("item")

    def test_literalize_enforced(self):
        engine = RuleEngine()
        engine.literalize("item", "kind")
        with pytest.raises(WorkingMemoryError):
            engine.make("item", other=1)

    def test_add_rule_from_source_or_ast(self):
        from repro.lang.parser import parse_rule

        engine = RuleEngine()
        engine.add_rule("(p a (x) --> (halt))")
        engine.add_rule(parse_rule("(p b (y) --> (halt))"))
        assert set(engine.rules) == {"a", "b"}

    def test_duplicate_rule_name(self):
        engine = RuleEngine()
        engine.add_rule("(p a (x) --> (halt))")
        with pytest.raises(RuleError):
            engine.add_rule("(p a (y) --> (halt))")

    def test_invalid_rule_argument(self):
        engine = RuleEngine()
        with pytest.raises(RuleError):
            engine.add_rule(42)


class TestRunLoop:
    def test_run_until_quiescence(self):
        engine = RuleEngine()
        engine.load(
            """
            (p countdown (n ^v <v> ^v > 0)
              -->
              (modify 1 ^v (<v> - 1)))
            """
        )
        engine.make("n", v=5)
        fired = engine.run()
        assert fired == 5
        assert engine.wm.find("n", v=0)

    def test_run_limit(self):
        engine = RuleEngine()
        engine.load("(p loop (n ^v <v>) --> (modify 1 ^v (<v> + 1)))")
        engine.make("n", v=0)
        assert engine.run(limit=7) == 7

    def test_step_returns_fired_instantiation(self):
        engine = RuleEngine()
        engine.add_rule("(p r (item) --> (write hi))")
        engine.make("item")
        inst = engine.step()
        assert inst.rule.name == "r"
        assert engine.step() is None

    def test_cycle_counter(self):
        engine = RuleEngine()
        engine.add_rule("(p r (item) --> (write hi))")
        engine.make("item")
        engine.make("item")
        engine.run()
        assert engine.cycle_count == 2


class TestTracing:
    def test_firing_records(self):
        engine = RuleEngine()
        engine.load(
            """
            (p batch { [item] <S> }
              -->
              (set-remove <S>)
              (make done))
            """
        )
        for _ in range(4):
            engine.make("item")
        engine.run(limit=2)
        [record] = engine.tracer.firings
        assert record.rule_name == "batch"
        assert record.is_set_oriented
        assert record.token_count == 4
        assert record.removes == 4
        assert record.makes == 1
        assert record.wm_actions == 5

    def test_actions_per_firing_series(self):
        engine = RuleEngine()
        engine.load("(p one (item ^done no) --> (modify 1 ^done yes))")
        for _ in range(3):
            engine.make("item", done="no")
        engine.run()
        assert engine.tracer.actions_per_firing() == [1, 1, 1]
        assert engine.tracer.total_wm_actions() == 3

    def test_output_capture_and_clear(self):
        engine = RuleEngine()
        engine.add_rule("(p r (item) --> (write hello))")
        engine.make("item")
        engine.run()
        assert engine.output == ["hello"]
        engine.tracer.clear()
        assert engine.output == []

    def test_firings_of(self):
        engine = RuleEngine()
        engine.add_rule("(p a (x) --> (write a))")
        engine.add_rule("(p b (y) --> (write b))")
        engine.make("x")
        engine.make("y")
        engine.run()
        assert len(engine.tracer.firings_of("a")) == 1
        assert len(engine.tracer.firings_of("b")) == 1


class TestEngineWithAllMatchers:
    def test_same_behaviour(self, make_engine, any_matcher_name):
        engine = make_engine(any_matcher_name)
        engine.load(
            """
            (literalize task state)
            (p advance (task ^state todo) --> (modify 1 ^state done))
            """
        )
        for _ in range(3):
            engine.make("task", state="todo")
        assert engine.run(limit=10) == 3
        assert len(engine.wm.find("task", state="done")) == 3


class TestReset:
    def test_reset_clears_state_but_keeps_rules(self):
        from repro import RuleEngine

        engine = RuleEngine()
        engine.add_rule("(p r (item) --> (write hi) (halt))")
        engine.make("item")
        engine.run()
        assert engine.halted
        engine.reset()
        assert not engine.halted
        assert len(engine.wm) == 0
        assert engine.output == []
        assert engine.conflict_set_size() == 0
        # The same rule base works on fresh data.
        engine.make("item")
        assert engine.run() == 1
        assert engine.output == ["hi"]
