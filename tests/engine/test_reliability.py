"""Unit tests for transactional firings and fault containment.

Covers the :mod:`repro.engine.reliability` layers one by one: the
DeltaBatch savepoint journal, working-memory transactions, error
policy parsing and decisions, atomic rollback under ``halt``,
skip/retry/quarantine containment, the dead-letter list, the
quarantine registry (including :meth:`ConflictSet.current`), run
watchdogs, and ``reset()`` semantics.  Cross-matcher and durability
interactions live in ``tests/properties/test_rhs_fault_injection.py``
and ``tests/durability/test_reliability_recovery.py``.
"""

import time

import pytest

from repro import RuleEngine
from repro.engine.stats import MatchStats
from repro.engine.reliability import (
    DeadLetter,
    HaltPolicy,
    LivelockDetector,
    QuarantinePolicy,
    RetryPolicy,
    SkipPolicy,
    content_identity,
    policy_named,
)
from repro.errors import EngineError, FiringError, LivelockError
from repro.wm.events import ADD, REMOVE, DeltaBatch
from repro.wm.memory import WorkingMemory


def wm_state(engine):
    return sorted(
        (w.time_tag, w.wme_class, tuple(sorted(w.as_dict().items())))
        for w in engine.wm
    )


def cs_state(engine):
    from repro.durability.manager import fired_signature

    return sorted(
        (
            inst.rule.name,
            tuple(map(tuple, fired_signature(inst))),
            inst.eligible(),
        )
        for inst in engine.conflict_set.instantiations()
    )


def full_state(engine):
    return (
        wm_state(engine),
        cs_state(engine),
        engine.wm.latest_time_tag,
        engine.halted,
        tuple(engine.output),
    )


class TestDeltaBatchSavepoints:
    def test_mark_and_rewind_restores_journal(self):
        batch = DeltaBatch()
        batch.record(ADD, "w1")
        mark = batch.mark()
        batch.record(ADD, "w2")
        batch.record(REMOVE, "w3")
        undone = batch.rewind(mark)
        assert undone == [(REMOVE, "w3"), (ADD, "w2")]
        assert [(e.sign, e.wme) for e in batch.events()] == [(ADD, "w1")]
        assert batch.submitted == 1

    def test_rewind_restores_tombstoned_cancel(self):
        batch = DeltaBatch()
        batch.record(ADD, "w1")
        mark = batch.mark()
        # A remove cancelling a pre-mark add tombstones it in place;
        # rewinding must resurrect the add.
        batch.record(REMOVE, "w1")
        assert len(batch) == 0
        undone = batch.rewind(mark)
        assert undone == [(REMOVE, "w1")]
        assert [(e.sign, e.wme) for e in batch.events()] == [(ADD, "w1")]
        assert batch.coalesced == 0

    def test_rewind_of_intra_mark_cancel_pair(self):
        batch = DeltaBatch()
        mark = batch.mark()
        batch.record(ADD, "w1")
        batch.record(REMOVE, "w1")
        undone = batch.rewind(mark)
        # The cancel undoes to its "-", then the add to its "+".
        assert undone == [(REMOVE, "w1"), (ADD, "w1")]
        assert batch.events() == []
        assert batch.submitted == 0

    def test_rewind_to_zero_is_empty_batch(self):
        batch = DeltaBatch()
        batch.record(ADD, "a")
        batch.record(ADD, "b")
        batch.rewind(0)
        assert batch.events() == []
        assert len(batch) == 0


class TestWorkingMemoryTransactions:
    def _wm(self):
        wm = WorkingMemory()
        wm.registry.literalize("item", ["n"])
        return wm

    def test_commit_delivers_staged_effects(self):
        wm = self._wm()
        seen = []
        wm.attach(lambda e: seen.append((e.sign, e.wme.time_tag)))
        savepoint = wm.begin_transaction()
        wme = wm.make("item", n=1)
        assert seen == []  # staged, not delivered
        wm.commit_transaction(savepoint)
        assert seen == [(ADD, wme.time_tag)]
        assert len(wm) == 1

    def test_rollback_restores_multiset_and_tag_counter(self):
        wm = self._wm()
        keep = wm.make("item", n=0)
        tag_before = wm.latest_time_tag
        seen = []
        wm.attach(lambda e: seen.append(e))
        savepoint = wm.begin_transaction()
        wm.make("item", n=1)
        wm.remove(keep)
        wm.rollback_transaction(savepoint)
        assert seen == []
        assert sorted(w.time_tag for w in wm) == [keep.time_tag]
        assert wm.latest_time_tag == tag_before

    def test_rollback_inside_outer_batch_keeps_outer_deltas(self):
        wm = self._wm()
        delivered = []
        wm.attach(lambda e: delivered.append(e.sign),
                  on_batch=lambda evs: delivered.extend(
                      e.sign for e in evs))
        with wm.batch():
            wm.make("item", n=1)
            savepoint = wm.begin_transaction()
            wm.make("item", n=2)
            wm.rollback_transaction(savepoint)
        assert delivered == [ADD]
        assert [w.as_dict()["n"] for w in wm] == [1]

    def test_fingerprint_tracks_rollback(self):
        wm = self._wm()
        wm.enable_fingerprint()
        wm.make("item", n=1)
        before = wm.content_fingerprint()
        savepoint = wm.begin_transaction()
        wm.make("item", n=2)
        wm.rollback_transaction(savepoint)
        assert wm.content_fingerprint() == before
        # And the incremental fingerprint agrees with a full rescan.
        fresh = self._wm()
        fresh.make("item", n=1)
        assert wm.content_fingerprint() == fresh.content_fingerprint()


class TestPolicyParsing:
    def test_named_forms(self):
        assert isinstance(policy_named("halt"), HaltPolicy)
        assert isinstance(policy_named("skip"), SkipPolicy)
        retry = policy_named("retry:5:0.25:quarantine:2")
        assert isinstance(retry, RetryPolicy)
        assert retry.attempts == 5
        assert retry.backoff == 0.25
        assert isinstance(retry.then, QuarantinePolicy)
        assert retry.then.after == 2
        assert policy_named("quarantine:7").after == 7

    def test_policy_objects_pass_through(self):
        policy = SkipPolicy()
        assert policy_named(policy) is policy

    def test_malformed_specs_raise(self):
        for spec in ("nope", "retry:x", "quarantine:1:2", "halt:1", 42):
            with pytest.raises(EngineError):
                policy_named(spec)

    def test_retry_decides_then_falls_back(self):
        policy = RetryPolicy(2, backoff=0.5)
        assert policy.decide(None, 1, 1) == ("retry", 0.5)
        assert policy.decide(None, 2, 2) == ("retry", 1.0)  # exponential
        assert policy.decide(None, 3, 3) == ("skip", 0.0)

    def test_quarantine_skips_until_threshold(self):
        policy = QuarantinePolicy(after=2)
        assert policy.decide(None, 1, 1) == ("skip", 0.0)
        assert policy.decide(None, 1, 2) == ("quarantine", 0.0)

    def test_bad_constructor_arguments(self):
        with pytest.raises(EngineError):
            RetryPolicy(0)
        with pytest.raises(EngineError):
            QuarantinePolicy(0)
        with pytest.raises(EngineError):
            LivelockDetector(0)


PROGRAM = """
(literalize item n)
(literalize out n)
(p poison (item ^n 1) --> (make out ^n 10) (call explode) (make out ^n 11))
(p fine (item ^n { <n> > 1 }) --> (make out ^n <n>))
"""


def _engine(on_error="halt", **kwargs):
    engine = RuleEngine(on_error=on_error, **kwargs)
    engine.load(PROGRAM)
    return engine


def _always_boom(*args):
    raise ValueError("boom")


class TestAtomicHalt:
    def test_rollback_is_byte_identical(self):
        engine = _engine()
        engine.register_function("explode", _always_boom)
        engine.make("item", n=1)
        before = full_state(engine)
        with pytest.raises(FiringError) as excinfo:
            engine.run()
        assert full_state(engine) == before
        error = excinfo.value
        assert error.rule_name == "poison"
        assert error.stage == "rhs"
        assert error.action_path == (1,)
        assert error.action_index == 1
        assert isinstance(error.__cause__, ValueError)

    def test_halt_restores_refraction_stamp(self):
        engine = _engine()
        engine.register_function("explode", _always_boom)
        engine.make("item", n=1)
        with pytest.raises(FiringError):
            engine.run()
        (inst,) = engine.conflict_set.instantiations()
        assert inst.eligible()  # the firing never happened

    def test_fixed_fault_fires_cleanly_after_halt(self):
        engine = _engine()
        calls = {"n": 0}

        def flaky(*args):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ValueError("transient")

        engine.register_function("explode", flaky)
        engine.make("item", n=1)
        with pytest.raises(FiringError):
            engine.run()
        fired = engine.run()
        assert fired == 1
        assert sorted(w.as_dict()["n"] for w in engine.wm.of_class("out")) \
            == [10, 11]

    def test_halt_action_rolls_back_halted_flag(self):
        engine = RuleEngine()
        engine.load("""
(literalize item n)
(p stopper (item ^n 1) --> (halt) (call explode))
""")
        engine.register_function("explode", _always_boom)
        engine.make("item", n=1)
        with pytest.raises(FiringError):
            engine.run()
        assert engine.halted is False

    def test_uncontained_exceptions_escape_raw(self):
        engine = _engine()

        def interrupt(*args):
            raise KeyboardInterrupt()

        engine.register_function("explode", interrupt)
        engine.make("item", n=1)
        before = wm_state(engine)
        with pytest.raises(KeyboardInterrupt):
            engine.run()
        # BaseException still unwinds the staged transaction... but is
        # never converted into a FiringError or contained by a policy.
        assert wm_state(engine) == before
        assert engine.dead_letters == []


class TestSkipAndDeadLetters:
    def test_skip_dead_letters_and_continues(self):
        engine = _engine(on_error="skip")
        engine.register_function("explode", _always_boom)
        engine.make("item", n=1)
        engine.make("item", n=2)
        fired = engine.run()
        assert fired == 1  # only `fine`
        assert [w.as_dict()["n"] for w in engine.wm.of_class("out")] == [2]
        (letter,) = engine.dead_letters
        assert letter.rule_name == "poison"
        assert letter.outcome == "skip"
        assert letter.action_path == (1,)
        assert "ValueError: boom" in letter.error
        assert "poison" in repr(letter)

    def test_skip_consumes_the_refraction_stamp(self):
        engine = _engine(on_error="skip")
        engine.register_function("explode", _always_boom)
        engine.make("item", n=1)
        engine.run()
        poison = [i for i in engine.conflict_set.instantiations()
                  if i.rule.name == "poison"]
        assert poison and not poison[0].eligible()
        assert engine.run() == 0  # not re-selected forever

    def test_per_rule_policy_overrides_default(self):
        engine = _engine(on_error="halt")
        engine.set_error_policy("skip", rule="poison")
        engine.register_function("explode", _always_boom)
        engine.make("item", n=1)
        engine.make("item", n=2)
        assert engine.run() == 1
        assert len(engine.dead_letters) == 1

    def test_trace_record_carries_outcome(self):
        engine = _engine(on_error="skip", stats=MatchStats())
        engine.register_function("explode", _always_boom)
        engine.make("item", n=1)
        engine.run()
        aborted = [r for r in engine.tracer.firings if r.aborted]
        assert aborted
        assert aborted[-1].outcome == "skip"
        assert "boom" in aborted[-1].error
        assert engine.stats.counters.get("firing_aborts", 0) >= 1
        assert engine.stats.counters.get("dead_letters", 0) == 1


class TestRetry:
    def test_retry_converges_on_transient_fault(self):
        engine = _engine(on_error="retry:3")
        calls = {"n": 0}

        def flaky(*args):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise ValueError("transient")

        engine.register_function("explode", flaky)
        engine.make("item", n=1)
        fired = engine.run()
        assert fired == 1
        assert calls["n"] == 3
        outcomes = [r.outcome for r in engine.tracer.firings]
        assert outcomes == ["retry", "retry", "fired"]
        assert engine.dead_letters == []

    def test_retry_budget_spent_falls_back_to_skip(self):
        engine = _engine(on_error="retry:2")
        engine.register_function("explode", _always_boom)
        engine.make("item", n=1)
        assert engine.run() == 0
        (letter,) = engine.dead_letters
        assert letter.attempts == 3  # 1 initial + 2 retries
        assert letter.outcome == "skip"

    def test_retry_backoff_sleeps(self, monkeypatch):
        import repro.engine.reliability as reliability

        slept = []
        monkeypatch.setattr(reliability.time, "sleep", slept.append)
        engine = _engine(on_error="retry:2:0.1")
        engine.register_function("explode", _always_boom)
        engine.make("item", n=1)
        engine.run()
        assert slept == [0.1, 0.2]


class TestQuarantine:
    def _poison_engine(self, after):
        engine = RuleEngine(on_error=f"quarantine:{after}")
        engine.load("""
(literalize item n)
(literalize out n)
(p bad (item ^n <n>) --> (call explode))
(p good (item ^n <n>) --> (make out ^n <n>))
""")
        engine.register_function("explode", _always_boom)
        return engine

    def test_rule_detaches_after_k_failures(self):
        engine = self._poison_engine(2)
        for n in (1, 2, 3):
            engine.make("item", n=n)
        fired = engine.run()
        assert fired == 3  # `good` three times
        assert set(engine.quarantined_rules()) == {"bad"}
        assert engine.conflict_set.parked_rules() == ["bad"]
        assert len(engine.dead_letters) == 2
        assert engine.dead_letters[-1].outcome == "quarantine"

    def test_quarantined_rule_keeps_matching_while_parked(self):
        engine = self._poison_engine(1)
        engine.make("item", n=1)
        engine.run()
        engine.make("item", n=2)
        engine.run()
        # The new match parked straight into the pool.
        parked = engine.conflict_set.parked_of_rule("bad")
        assert len(parked) == 2

    def test_release_readmits_instantiations(self):
        engine = self._poison_engine(1)
        engine.make("item", n=1)
        engine.make("item", n=2)
        engine.run()
        released = engine.release_rule("bad")
        # Both matches return — the dead-lettered n=1 one (ineligible,
        # its stamp stays consumed) and the never-attempted n=2 one.
        assert released == 2
        assert not engine.quarantined_rules()
        bad = [i for i in engine.conflict_set.instantiations()
               if i.rule.name == "bad"]
        assert sorted(i.eligible() for i in bad) == [False, True]

    def test_conflict_set_current_sees_only_live(self):
        engine = self._poison_engine(1)
        engine.make("item", n=1)
        engine.run()
        conflict_set = engine.conflict_set
        (parked,) = conflict_set.parked_of_rule("bad")
        assert conflict_set.current(parked.identity()) is None
        (live,) = [i for i in conflict_set.instantiations()
                   if i.rule.name == "good"]
        assert conflict_set.current(live.identity()) is live

    def test_retract_reaches_parked_pool(self):
        engine = self._poison_engine(1)
        wme = engine.make("item", n=1)
        engine.run()
        engine.make("item", n=2)
        engine.remove(wme)
        assert len(engine.conflict_set.parked_of_rule("bad")) == 1


class TestWatchdogs:
    def _counter_engine(self):
        engine = RuleEngine()
        engine.load("""
(literalize tick n)
(p advance (tick ^n { <n> < 50 }) --> (modify 1 ^n (<n> + 1)))
""")
        engine.make("tick", n=0)
        return engine

    def test_firing_limit(self):
        engine = self._counter_engine()
        fired = engine.run(limit=5)
        assert fired == 5
        assert engine.last_run_report.reason == "limit"

    def test_wall_clock_budget(self):
        engine = self._counter_engine()
        fired = engine.run(wall_clock=0.0)
        assert fired == 0
        assert engine.last_run_report.reason == "wall_clock"

    def test_quiescent_report(self):
        engine = self._counter_engine()
        engine.run()
        report = engine.last_run_report
        assert report.reason == "quiescent"
        assert report.fired == 50
        assert "quiescent" in repr(report)

    def _spinner_engine(self):
        engine = RuleEngine()
        # Rewrites the same WME to the same content: refire-on-change
        # keeps it eligible, and content never advances — a livelock.
        engine.load("""
(literalize flag v)
(p spin (flag ^v on) --> (modify 1 ^v on))
""")
        engine.make("flag", v="on")
        return engine

    def test_livelock_detector_stops(self):
        engine = self._spinner_engine()
        fired = engine.run(limit=1000, livelock_threshold=4)
        assert fired < 1000
        report = engine.last_run_report
        assert report.reason == "livelock"
        assert report.livelock_rule == "spin"
        assert "livelocked" in repr(report)

    def test_livelock_detector_raises_on_request(self):
        engine = self._spinner_engine()
        with pytest.raises(LivelockError):
            engine.run(livelock_threshold=4, on_livelock="raise")

    def test_progressing_run_is_not_flagged(self):
        engine = self._counter_engine()
        fired = engine.run(livelock_threshold=2)
        assert fired == 50
        assert engine.last_run_report.reason == "quiescent"

    def test_bad_on_livelock_value(self):
        engine = self._counter_engine()
        with pytest.raises(EngineError):
            engine.run(livelock_threshold=2, on_livelock="explode")

    def test_parallel_budgets(self):
        engine = self._counter_engine()
        cycles, fired, _, _ = engine.run_parallel(firing_budget=3)
        assert fired >= 3
        assert engine.last_run_report.reason == "limit"
        engine = self._counter_engine()
        cycles, fired, _, _ = engine.run_parallel(wall_clock=0.0)
        assert (cycles, fired) == (0, 0)
        assert engine.last_run_report.reason == "wall_clock"

    def test_parallel_livelock_detector(self):
        engine = self._spinner_engine()
        cycles, fired, _, _ = engine.run_parallel(
            max_cycles=1000, livelock_threshold=4
        )
        assert cycles < 1000
        assert engine.last_run_report.reason == "livelock"
        assert engine.last_run_report.livelock_rule == "(parallel cycle)"

    def test_expired_deadline_stops_before_firing(self):
        engine = self._counter_engine()
        fired = engine.run(deadline=time.monotonic() - 1.0)
        assert fired == 0
        assert engine.last_run_report.reason == "deadline"

    def test_future_deadline_lets_the_run_quiesce(self):
        engine = self._counter_engine()
        fired = engine.run(deadline=time.monotonic() + 60.0)
        assert fired == 50
        assert engine.last_run_report.reason == "quiescent"

    def test_parallel_deadline(self):
        engine = self._counter_engine()
        cycles, fired, _, _ = engine.run_parallel(
            deadline=time.monotonic() - 1.0
        )
        assert (cycles, fired) == (0, 0)
        assert engine.last_run_report.reason == "deadline"


class TestContentIdentity:
    def test_identity_ignores_time_tags(self):
        engine = RuleEngine()
        engine.load("""
(literalize item n)
(p r (item ^n <n>) --> (make item ^n <n>))
""")
        engine.make("item", n=1)
        (first,) = engine.conflict_set.instantiations()
        identity = content_identity(first)
        engine.reset()
        engine.make("item", n=1)  # fresh tag, same content
        (second,) = engine.conflict_set.instantiations()
        assert content_identity(second) == identity


class TestReset:
    def test_reset_clears_reliability_state(self):
        engine = RuleEngine(on_error="quarantine:1")
        engine.load(PROGRAM)
        engine.register_function("explode", _always_boom)
        engine.make("item", n=1)
        engine.run()
        assert set(engine.quarantined_rules()) == {"poison"}
        assert engine.dead_letters
        engine.reset()
        assert not engine.quarantined_rules()
        assert engine.dead_letters == []
        assert engine.conflict_set.parked_rules() == []
        assert len(engine.wm) == 0
        assert engine.cycle_count == 0
        # The rule base survives; a fresh scenario works.
        engine.register_function("explode", lambda *a: None)
        engine.make("item", n=1)
        assert engine.run() == 1

    def test_reset_refuses_inside_open_batch(self):
        engine = RuleEngine()
        engine.load(PROGRAM)
        with pytest.raises(EngineError):
            with engine.batch():
                engine.reset()


class TestDeadLetterRepr:
    def test_empty_action_path_prints_dash(self):
        letter = DeadLetter("r", 1, 1, (), "E", None, "skip")
        assert "action -" in repr(letter)
