"""Tests for the parallel firing cycle (the DIPS §8.1 execution model)."""


from repro import RuleEngine

TUPLE_DEDUP = """
(literalize rec key serial)
(p dedup
  (rec ^key <k> ^serial <s>)
  { (rec ^key <k> ^serial < <s>) <Old> }
  -->
  (remove <Old>))
"""

SET_DEDUP = """
(literalize rec key serial)
(p dedup
  { [rec ^key <k>] <R> }
  :scalar (<k>)
  :test ((count <R>) > 1)
  -->
  (bind <first> true)
  (foreach <R> descending
    (if (<first> == true)
      (bind <first> false)
     else
      (remove <R>))))
"""


def feed(engine, copies):
    for serial in range(copies):
        engine.make("rec", key="dup", serial=serial)


class TestMutualInvalidation:
    def test_tuple_instantiations_conflict(self):
        engine = RuleEngine()
        engine.load(TUPLE_DEDUP)
        feed(engine, 5)
        cycles, fired, conflicted, abandoned = engine.run_parallel(
            max_cycles=10
        )
        # 10 pair instantiations existed; most were invalidated by
        # earlier firings of the same cycle — the paper's criticism.
        assert conflicted > 0
        assert abandoned == 0
        assert len(engine.wm) == 1

    def test_set_instantiation_never_conflicts(self):
        engine = RuleEngine()
        engine.load(SET_DEDUP)
        feed(engine, 5)
        cycles, fired, conflicted, abandoned = engine.run_parallel(
            max_cycles=10
        )
        assert (fired, conflicted, abandoned) == (1, 0, 0)
        assert len(engine.wm) == 1

    def test_disjoint_instantiations_all_fire(self):
        engine = RuleEngine()
        engine.load(
            """
            (literalize task id state)
            (p start { (task ^state todo) <T> } --> (modify <T> ^state run))
            """
        )
        for index in range(4):
            engine.make("task", id=index, state="todo")
        fired, conflicted, abandoned = engine.parallel_cycle()
        assert (fired, conflicted, abandoned) == (4, 0, 0)
        assert len(engine.wm.find("task", state="run")) == 4


class TestCycleMechanics:
    def test_quiescence(self):
        engine = RuleEngine()
        engine.add_rule("(p r (a) --> (write x))")
        assert engine.run_parallel() == (0, 0, 0, 0)

    def test_halt_stops_the_cycle(self):
        engine = RuleEngine()
        engine.add_rule("(p r (a ^n <n>) --> (halt))")
        engine.make("a", n=1)
        engine.make("a", n=2)
        fired, conflicted, abandoned = engine.parallel_cycle()
        assert fired == 1  # halt took effect before the second firing
        assert abandoned == 0

    def test_soi_version_guard(self):
        """An SOI changed by an earlier same-cycle firing is a conflict."""
        engine = RuleEngine()
        engine.load(
            """
            (literalize item v)
            (literalize note text)
            (literalize go)
            (p shrink (go) { [item] <S> } :test ((count <S>) > 1)
              -->
              (foreach <S> descending (remove <S>)))
            (p watch { [item] <S> } :test ((count <S>) > 1)
              -->
              (make note ^text saw))
            """
        )
        engine.make("item", v=1)
        engine.make("item", v=2)
        engine.make("go")  # most recent: shrink dominates the cycle
        fired, conflicted, abandoned = engine.parallel_cycle()
        # shrink fires first and empties the items; watch's SOI was
        # destroyed mid-cycle -> conflict, exactly the §8.1 case.
        assert fired == 1
        assert conflicted == 1
        assert abandoned == 0
        assert not engine.wm.find("note")

    def test_matches_sequential_end_state(self):
        # For this independent workload parallel and sequential agree.
        def build():
            engine = RuleEngine()
            engine.load(
                """
                (literalize n v)
                (p double { (n ^v <v>) <N> } -(done)
                  --> (modify <N> ^v (<v> * 2)) (make done))
                """
            )
            engine.make("n", v=21)
            return engine

        sequential = build()
        sequential.run(limit=10)
        parallel = build()
        parallel.run_parallel(max_cycles=10)
        assert sorted(w.get("v") for w in sequential.wm.of_class("n")) \
            == sorted(w.get("v") for w in parallel.wm.of_class("n"))
