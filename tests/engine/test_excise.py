"""Tests for runtime rule removal (OPS5 excise), across matchers."""

import pytest

from repro.errors import ReproError


class TestExcise:
    def test_instantiations_retracted(self, make_engine, any_matcher_name):
        engine = make_engine(any_matcher_name)
        engine.add_rule("(p doomed (item) --> (write x))")
        engine.add_rule("(p keeper (item) --> (write y))")
        engine.make("item")
        assert engine.conflict_set_size() == 2
        engine.excise("doomed")
        assert engine.conflict_set_size() == 1
        assert engine.conflict_set.instantiations()[0].rule.name == "keeper"
        assert "doomed" not in engine.rules

    def test_set_rule_sois_retracted(self, make_engine, any_matcher_name):
        engine = make_engine(any_matcher_name)
        engine.add_rule("(p doomed [item ^v <v>] --> (write x))")
        engine.make("item", v=1)
        engine.make("item", v=2)
        assert engine.conflict_set_size() == 1
        engine.excise("doomed")
        assert engine.conflict_set_size() == 0

    def test_excised_rule_stays_dead(self, make_engine, any_matcher_name):
        engine = make_engine(any_matcher_name)
        engine.add_rule("(p doomed (item) --> (write x))")
        engine.excise("doomed")
        engine.make("item")
        assert engine.conflict_set_size() == 0
        assert engine.run(limit=5) == 0

    def test_name_reusable_after_excise(self, make_engine,
                                        any_matcher_name):
        engine = make_engine(any_matcher_name)
        engine.add_rule("(p r (item) --> (write old))")
        engine.excise("r")
        engine.add_rule("(p r (item) --> (write new))")
        engine.make("item")
        engine.run(limit=2)
        assert engine.output == ["new"]

    def test_unknown_rule_raises(self, make_engine, any_matcher_name):
        engine = make_engine(any_matcher_name)
        with pytest.raises(ReproError):
            engine.excise("ghost")

    def test_shared_prefix_survives(self, make_engine):
        """Excising one of two prefix-sharing rules leaves the other."""
        engine = make_engine("rete")
        engine.add_rule("(p a (x ^v <v>) (y ^v <v>) --> (write a))")
        engine.add_rule("(p b (x ^v <v>) (y ^v <v>) (z) --> (write b))")
        engine.make("x", v=1)
        engine.make("y", v=1)
        engine.make("z")
        assert engine.conflict_set_size() == 2
        engine.excise("a")
        assert engine.conflict_set_size() == 1
        # Rule b keeps matching new data through the shared joins.
        engine.make("x", v=1)
        assert engine.conflict_set_size() == 2

    def test_dips_cond_rows_cleaned(self, make_engine):
        engine = make_engine("dips")
        engine.add_rule("(p doomed (E ^name <x>) --> (write x))")
        engine.make("E", name="Mike")
        engine.excise("doomed")
        table = engine.matcher.store.cond_table("E")
        assert all(
            row.get("rule_id") != "doomed" for row in table.scan()
        )
