"""Unit tests for the ``(call name args...)`` host-function escape."""

import pytest

from repro import RuleEngine
from repro.errors import EngineError
from repro.lang import ast
from repro.lang.parser import parse_rule
from repro.lang.printer import format_rule


class TestParsing:
    def test_call_parses(self):
        rule = parse_rule("(p r (a ^v <v>) --> (call notify <v> 2))")
        action = rule.actions[0]
        assert isinstance(action, ast.CallAction)
        assert action.name == "notify"
        assert len(action.arguments) == 2

    def test_call_roundtrips(self):
        rule = parse_rule("(p r (a ^v <v>) --> (call notify <v>))")
        assert parse_rule(format_rule(rule)) == rule

    def test_call_marks_rhs_boundary(self):
        rule = parse_rule("(p r (a) (call ping))")
        assert len(rule.ces) == 1


class TestExecution:
    def test_registered_function_invoked(self):
        engine = RuleEngine()
        received = []
        engine.register_function("notify", lambda *args: received.append(args))
        engine.add_rule("(p r (evt ^kind <k> ^n <n>) --> "
                        "(call notify <k> (<n> * 2)))")
        engine.make("evt", kind="boom", n=21)
        engine.run(limit=2)
        assert received == [("boom", 42)]

    def test_unregistered_function_errors(self):
        engine = RuleEngine()
        engine.add_rule("(p r (evt) --> (call missing))")
        engine.make("evt")
        with pytest.raises(EngineError):
            engine.run(limit=2)

    def test_call_inside_foreach(self):
        engine = RuleEngine()
        seen = []
        engine.register_function("log", seen.append)
        engine.add_rule(
            "(p r [item ^v <v>] --> (foreach <v> ascending (call log <v>)))"
        )
        for value in (3, 1, 2):
            engine.make("item", v=value)
        engine.run(limit=2)
        assert seen == [1, 2, 3]

    def test_function_can_drive_host_state(self):
        engine = RuleEngine()
        sink = {}
        engine.register_function(
            "store", lambda key, value: sink.__setitem__(key, value)
        )
        engine.add_rule(
            "(p summarise { [sale ^amt <a>] <S> } --> "
            "(call store total (sum <S> ^amt)))"
        )
        engine.make("sale", amt=10)
        engine.make("sale", amt=32)
        engine.run(limit=2)
        assert sink == {"total": 42}
