"""Unit tests for the expression evaluator."""

import pytest

from repro.core.expr import evaluate, is_truthy
from repro.errors import EngineError
from repro.lang.parser import parse_expression


class Resolver:
    def __init__(self, variables=None, aggregates=None):
        self.variables = variables or {}
        self.aggregates = aggregates or {}

    def var(self, name):
        return self.variables[name]

    def aggregate(self, node):
        return self.aggregates[(node.op, node.target)]


def ev(source, **variables):
    return evaluate(parse_expression(source), Resolver(variables))


class TestArithmetic:
    def test_precedence_and_ops(self):
        assert ev("1 + 2 * 3") == 7
        assert ev("10 - 4 - 3") == 3
        assert ev("7 // 2") == 3
        assert ev("7 / 2") == 3.5
        assert ev("7 mod 3") == 1

    def test_unary_minus(self):
        assert ev("- 3 + 5") == 2

    def test_division_by_zero(self):
        with pytest.raises(EngineError):
            ev("1 / 0")
        with pytest.raises(EngineError):
            ev("1 mod 0")

    def test_arithmetic_needs_numbers(self):
        with pytest.raises(EngineError):
            ev("<x> + 1", x="abc")


class TestComparisons:
    def test_equality_uses_ops5_semantics(self):
        assert ev("<x> == 2", x=2.0) is True
        assert ev("<x> == two", x="two") is True
        assert ev("<x> == 2", x="2") is False  # symbol vs number

    def test_ordering_type_mismatch_is_false(self):
        assert ev("<x> > 1", x="abc") is False
        assert ev("<x> <= 1", x="abc") is False

    def test_angle_predicates(self):
        assert ev("2 <> 3") is True
        assert ev("2 = 2") is True


class TestBoolean:
    def test_truthiness(self):
        assert is_truthy("true")
        assert is_truthy(1)
        assert is_truthy("anything")
        assert not is_truthy("false")
        assert not is_truthy("nil")
        assert not is_truthy(0)
        assert not is_truthy(None)
        assert not is_truthy(False)

    def test_and_or_not(self):
        assert ev("(1 < 2) and (2 < 3)") is True
        assert ev("(1 > 2) or (2 < 3)") is True
        assert ev("not (1 > 2)") is True
        assert ev("(1 > 2) and (1 / 0 > 0)") is False  # short circuit

    def test_symbols_in_boolean_context(self):
        assert ev("<f> and true", f="true") is True
        assert ev("<f> or false", f="nil") is False


class TestAggregates:
    def test_aggregate_resolution(self):
        resolver = Resolver(aggregates={("count", "S"): 4})
        expression = parse_expression("(count <S>) > 3")
        assert evaluate(expression, resolver) is True

    def test_none_aggregate_in_comparison_is_false(self):
        resolver = Resolver(aggregates={("min", "S"): None})
        expression = parse_expression("(min <S>) < 5")
        assert evaluate(expression, resolver) is False
