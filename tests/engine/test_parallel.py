"""Unit tests for the parallel-execution cost model."""

from repro import RuleEngine
from repro.bench.workloads import process_set_program, process_tuple_program
from repro.engine.parallel import (
    firing_latency,
    run_latency,
    speedup,
    speedup_table,
)
from repro.engine.tracing import FiringRecord


def record_with(tags, kind="modify"):
    """A record that touched *tags* (None means an independent make)."""
    record = FiringRecord(1, "r", True, (1,), len(tags))
    next_tag = 1000
    for tag in tags:
        if tag is None:
            record.makes += 1
            record.touch("make")
        elif kind == "remove":
            record.removes += 1
            record.touch("remove", tag)
        else:
            record.modifies += 1
            record.touch("modify", tag, next_tag)
            next_tag += 1
    return record


class TestFiringLatency:
    def test_sequential_is_total_cost(self):
        # Each modify is a 2-unit remove+insert chain on its element.
        record = record_with([1, 2, 3, 4])
        assert firing_latency(record, 1) == 8

    def test_independent_modifies_divide_by_workers(self):
        record = record_with([1, 2, 3, 4])
        assert firing_latency(record, 2) == 4
        assert firing_latency(record, 4) == 2
        # The 2-unit remove+insert chain cannot be split further.
        assert firing_latency(record, 100) == 2

    def test_removes_are_unit_cost(self):
        record = record_with([1, 2, 3, 4], kind="remove")
        assert firing_latency(record, 1) == 4
        assert firing_latency(record, 4) == 1

    def test_same_element_chain_limits(self):
        record = record_with([1, 1, 1, 2])
        assert firing_latency(record, 100) == 6  # chain on element 1

    def test_makes_are_always_independent(self):
        record = record_with([None, None, None])
        assert firing_latency(record, 3) == 1

    def test_empty_firing(self):
        record = record_with([])
        assert firing_latency(record, 8) == 0

    def test_modify_chain_follows_the_replacement(self):
        # modify(5) -> 1001, then modify(1001): one logical element,
        # so both land on chain root 5 (a 4-unit chain).
        record = FiringRecord(1, "r", True, (1,), 2)
        record.modifies = 2
        record.touch("modify", 5, 1001)
        record.touch("modify", 1001, 1002)
        assert firing_latency(record, 100) == 4


class TestRunModel:
    def test_set_program_speedup_scales(self):
        engine = RuleEngine()
        process_set_program(engine, 64)
        engine.run(limit=5)
        table = speedup_table(engine.tracer, worker_counts=(1, 4, 16, 64))
        latencies = [latency for _, latency, _ in table]
        assert latencies[0] > latencies[-1]
        # 64 independent modifies (+1 control): near-linear speedup.
        assert speedup(engine.tracer, 64) > 30

    def test_tuple_program_cannot_speed_up(self):
        engine = RuleEngine()
        process_tuple_program(engine, 64)
        engine.run(limit=300)
        # One action per firing: more workers achieve nothing.
        assert run_latency(engine.tracer, 1) == run_latency(
            engine.tracer, 64
        )
        assert speedup(engine.tracer, 64) == 1.0
