"""Unit tests for the parallel-execution cost model."""

from repro import RuleEngine
from repro.bench.workloads import process_set_program, process_tuple_program
from repro.engine.parallel import (
    firing_latency,
    run_latency,
    speedup,
    speedup_table,
)
from repro.engine.tracing import FiringRecord


def record_with(tags):
    record = FiringRecord(1, "r", True, (1,), len(tags))
    for tag in tags:
        if tag is None:
            record.makes += 1
        else:
            record.modifies += 1
        record.touched_tags.append(tag)
    return record


class TestFiringLatency:
    def test_sequential_is_action_count(self):
        record = record_with([1, 2, 3, 4])
        assert firing_latency(record, 1) == 4

    def test_independent_actions_divide_by_workers(self):
        record = record_with([1, 2, 3, 4])
        assert firing_latency(record, 2) == 2
        assert firing_latency(record, 4) == 1
        assert firing_latency(record, 100) == 1

    def test_same_element_chain_limits(self):
        record = record_with([1, 1, 1, 2])
        assert firing_latency(record, 100) == 3  # chain on element 1

    def test_makes_are_always_independent(self):
        record = record_with([None, None, None])
        assert firing_latency(record, 3) == 1

    def test_empty_firing(self):
        record = record_with([])
        assert firing_latency(record, 8) == 0


class TestRunModel:
    def test_set_program_speedup_scales(self):
        engine = RuleEngine()
        process_set_program(engine, 64)
        engine.run(limit=5)
        table = speedup_table(engine.tracer, worker_counts=(1, 4, 16, 64))
        latencies = [latency for _, latency, _ in table]
        assert latencies[0] > latencies[-1]
        # 64 independent modifies (+1 control): near-linear speedup.
        assert speedup(engine.tracer, 64) > 30

    def test_tuple_program_cannot_speed_up(self):
        engine = RuleEngine()
        process_tuple_program(engine, 64)
        engine.run(limit=300)
        # One action per firing: more workers achieve nothing.
        assert run_latency(engine.tracer, 1) == run_latency(
            engine.tracer, 64
        )
        assert speedup(engine.tracer, 64) == 1.0
