"""Figure 3: the S-node algorithm, stage by stage.

The figure defines the token-arrival algorithm: find the SOI and the
token's place; update aggregates and re-evaluate the test; decide the
flow.  These tests script make/remove sequences and check every ``chg``
outcome — new, new-time, same-time, delete, fail — through the marks
the S-node sends and the γ-memory state it keeps.

(The find/update/decide unit behaviour is additionally covered in
``tests/rete/test_snode.py``; here we exercise the full network path.)
"""

from repro.lang.parser import parse_rule
from repro.rete import ReteNetwork
from repro.rete.snode import ACTIVE, INACTIVE
from repro.wm import WorkingMemory

from tests.rete.test_network import Listener


def build(source):
    wm = WorkingMemory()
    listener = Listener()
    net = ReteNetwork()
    net.set_listener(listener)
    net.attach(wm)
    rule = parse_rule(source)
    net.add_rule(rule)
    return wm, net, listener, net.snode_for(rule.name)


SWITCH_LIKE = """
(p switch
  { [player ^team A] <ATeam> }
  { [player ^team B] <BTeam> }
  :test ((count <ATeam>) == (count <BTeam>))
  -->
  (halt))
"""


class TestChgNew:
    def test_first_token_creates_soi_and_flows(self):
        wm, net, listener, snode = build("(p r [item] --> (halt))")
        wm.make("item")
        assert len(snode.gamma) == 1
        assert listener.events == [("+", "r")]


class TestChgNewTimeAndSameTime:
    def test_head_insert_repositions(self):
        wm, net, listener, snode = build("(p r [item] --> (halt))")
        wm.make("item")
        wm.make("item")
        assert listener.events == [("+", "r"), ("time", "r")]

    def test_non_head_removal_is_silent_but_versioned(self):
        wm, net, listener, snode = build("(p r [item] --> (halt))")
        older = wm.make("item")
        wm.make("item")
        (soi,) = snode.gamma.values()
        version = soi.version
        listener.events.clear()
        wm.remove(older)
        assert listener.events == []  # same-time: no flow
        assert soi.version == version + 1  # but the SOI changed


class TestChgDelete:
    def test_last_token_removal_deletes_soi(self):
        wm, net, listener, snode = build("(p r [item] --> (halt))")
        wme = wm.make("item")
        wm.remove(wme)
        assert snode.gamma == {}
        assert listener.events == [("+", "r"), ("-", "r")]


class TestChgFail:
    def test_count_test_lifecycle(self):
        """The SwitchTeams test: counts equal -> active, unequal -> fail."""
        wm, net, listener, snode = build(SWITCH_LIKE)
        wm.make("player", team="A")
        assert listener.events == []  # no B players yet: no tokens at all
        wm.make("player", team="B")
        assert listener.events[-1] == ("+", "switch")
        wm.make("player", team="B")  # 1 vs 2: test fails
        assert listener.events[-1] == ("-", "switch")
        (soi,) = snode.gamma.values()
        assert soi.status == INACTIVE
        before = len(listener.events)
        wm.make("player", team="A")  # 2 vs 2 again: reactivate
        # The new A WME joins both B players: the first token flips the
        # test true (send +), the second repositions (send time).
        assert listener.events[before:] == [
            ("+", "switch"), ("time", "switch"),
        ]
        assert soi.status == ACTIVE

    def test_aggregates_update_even_when_failing(self):
        wm, net, listener, snode = build(SWITCH_LIKE)
        wm.make("player", team="A")
        wm.make("player", team="B")
        wm.make("player", team="B")
        (soi,) = snode.gamma.values()
        counts = sorted(state.value() for state in soi.agg_states)
        assert counts == [1, 2]


class TestGammaMemoryEntry:
    def test_entry_is_tokens_status_av(self):
        wm, net, listener, snode = build(SWITCH_LIKE)
        wm.make("player", team="A")
        wm.make("player", team="B")
        [(tokens, status, av)] = snode.gamma_memory()
        assert len(tokens) == 1  # one A x B join product
        assert status == ACTIVE
        # AV: one entry per aggregate op, as (value, [(value, counter)]).
        assert len(av) == 2
        for value, pairs in av:
            assert value == 1
            assert all(counter >= 1 for _, counter in pairs)


class TestPointerSemantics:
    def test_conflict_set_sees_gamma_updates_transparently(self):
        """§5: 'updates to an active SOI ... transparently update the
        SOI in the conflict set' — only a pointer is passed."""
        wm, net, listener, snode = build("(p r [item] --> (halt))")
        wm.make("item")
        [inst] = listener.live
        assert len(inst.tokens()) == 1
        wm.make("item")
        assert len(inst.tokens()) == 2  # the same object grew
