"""Figure 1: rule, working memory, and conflict set.

The ``compete`` rule generates all possible competitions between the
members of two teams; with the figure's five WMEs the conflict set
holds exactly six instantiations, pairing each A player (tags 1, 2)
with each B player (tags 3, 4, 5).
"""

from tests.conftest import PAPER_ROSTER, load_roster

COMPETE = """
(literalize player name team)
(p compete
  (player ^name <n1> ^team A)
  (player ^name <n2> ^team B)
  -->
  (write |Player A:| <n1> |, Player B:| <n2>))
"""


class TestFigure1:
    def test_six_instantiations(self, make_engine, matcher_name):
        engine = make_engine(matcher_name)
        engine.load(COMPETE)
        load_roster(engine)
        instantiations = engine.conflict_set.of_rule("compete")
        assert len(instantiations) == 6

    def test_exact_pairs(self, make_engine, matcher_name):
        engine = make_engine(matcher_name)
        engine.load(COMPETE)
        load_roster(engine)
        pairs = sorted(
            (inst.wme_at(0).time_tag, inst.wme_at(1).time_tag)
            for inst in engine.conflict_set.of_rule("compete")
        )
        # The figure's six instantiations: 1&3 1&4 1&5 2&3 2&4 2&5.
        assert pairs == [
            (1, 3), (1, 4), (1, 5), (2, 3), (2, 4), (2, 5),
        ]

    def test_firing_all_instantiations(self, make_engine, matcher_name):
        engine = make_engine(matcher_name)
        engine.load(COMPETE)
        load_roster(engine)
        fired = engine.run(limit=20)
        assert fired == 6
        assert len(engine.output) == 6

    def test_working_memory_matches_figure(self, make_engine):
        engine = make_engine()
        engine.load(COMPETE)
        load_roster(engine)
        shown = [
            (w.time_tag, w.get("team"), w.get("name")) for w in engine.wm
        ]
        expected = [
            (tag, team, name)
            for tag, (team, name) in enumerate(PAPER_ROSTER, start=1)
        ]
        assert shown == expected
