"""Figure 5: the four "powerful set-oriented rules".

* ``SwitchTeams`` — set-modify over two counted teams;
* ``GroupByA`` — hierarchical decomposition (each A player with all
  their B competitors);
* ``RemoveDups`` — :scalar partitioning + count test + descending
  foreach keeping only the most recent duplicate;
* ``AlternativeRemoveDups`` — the same task by pure iteration, which
  "cannot discern whether any duplicates exist, thus its instantiation
  can fire unnecessarily".
"""


from tests.conftest import load_roster

PROGRAMS = {
    "SwitchTeams": """
        (literalize player name team)
        (p SwitchTeams
          { [player ^team A] <ATeam> }
          { [player ^team B] <BTeam> }
          :test ((count <ATeam>) == (count <BTeam>))
          -->
          (set-modify <ATeam> ^team B)
          (set-modify <BTeam> ^team A))
    """,
    "GroupByA": """
        (literalize player name team)
        (p GroupByA
          [player ^name <n1> ^team A]
          [player ^name <n2> ^team B]
          -->
          (foreach <n1>
            (write <n1>)
            (foreach <n2>
              (write <n2>))))
    """,
    "RemoveDups": """
        (literalize player name team)
        (p RemoveDups
          { [player ^name <n> ^team <t>] <P> }
          :scalar (<n> <t>)
          :test ((count <P>) > 1)
          -->
          (bind <First> true)
          (foreach <P> descending
            (if (<First> == true)
              (bind <First> false)
             else
              (remove <P>))))
    """,
    "AlternativeRemoveDups": """
        (literalize player name team)
        (p AlternativeRemoveDups
          { [player ^name <n> ^team <t>] <P> }
          -->
          (foreach <n>
            (foreach <t>
              (bind <First> true)
              (foreach <P> descending
                (if (<First> == true)
                  (bind <First> false)
                 else
                  (remove <P>))))))
    """,
}


class TestSwitchTeams:
    def test_one_firing_switches_everyone(self, make_engine, matcher_name):
        engine = make_engine(matcher_name)
        engine.load(PROGRAMS["SwitchTeams"])
        roster = [("A", "p1"), ("A", "p2"), ("B", "q1"), ("B", "q2")]
        load_roster(engine, roster)
        assert engine.run(limit=1) == 1
        assert {w.get("team") for w in engine.wm.find("player", name="p1")} \
            == {"B"}
        assert {w.get("team") for w in engine.wm.find("player", name="q2")} \
            == {"A"}

    def test_count_test_gates_the_rule(self, make_engine, matcher_name):
        engine = make_engine(matcher_name)
        engine.load(PROGRAMS["SwitchTeams"])
        load_roster(engine, [("A", "p1"), ("A", "p2"), ("B", "q1")])
        assert engine.conflict_set_size() == 0  # 2 vs 1: unequal
        engine.make("player", team="B", name="q2")
        assert engine.conflict_set_size() == 1


class TestGroupByA:
    def test_hierarchical_output(self, make_engine, matcher_name):
        engine = make_engine(matcher_name)
        engine.load(PROGRAMS["GroupByA"])
        load_roster(engine)  # A: Jack, Janice; B: Sue, Jack, Sue
        engine.run(limit=1)
        # Default order: Janice (tag 2) before Jack (tag 1); each
        # followed by the distinct B-names, Sue (tag 5 dominant) first.
        assert engine.output == [
            "Janice", "Sue", "Jack",
            "Jack", "Sue", "Jack",
        ]


class TestRemoveDups:
    def test_keeps_only_most_recent(self, make_engine, matcher_name):
        engine = make_engine(matcher_name)
        engine.load(PROGRAMS["RemoveDups"])
        load_roster(engine)  # Sue/B duplicated (tags 3 and 5)
        engine.run(limit=10)
        remaining = sorted(
            (w.get("name"), w.get("team"), w.time_tag) for w in engine.wm
        )
        assert remaining == [
            ("Jack", "A", 1),
            ("Jack", "B", 4),
            ("Janice", "A", 2),
            ("Sue", "B", 5),  # tag 3 removed, most recent kept
        ]

    def test_one_instantiation_per_duplicated_pair(self, make_engine,
                                                   matcher_name):
        engine = make_engine(matcher_name)
        engine.load(PROGRAMS["RemoveDups"])
        roster = [
            ("A", "x"), ("A", "x"), ("A", "x"),
            ("B", "y"), ("B", "y"),
            ("A", "solo"),
        ]
        load_roster(engine, roster)
        # The figure: "one instantiation of this rule for each
        # player-team pair occurring in multiple WMEs".
        assert engine.conflict_set_size() == 2

    def test_does_not_fire_without_duplicates(self, make_engine,
                                              matcher_name):
        engine = make_engine(matcher_name)
        engine.load(PROGRAMS["RemoveDups"])
        load_roster(engine, [("A", "x"), ("B", "y")])
        assert engine.run(limit=10) == 0


class TestAlternativeRemoveDups:
    def test_same_end_state(self, make_engine, matcher_name):
        engine = make_engine(matcher_name)
        engine.load(PROGRAMS["AlternativeRemoveDups"])
        load_roster(engine)
        engine.run(limit=10)
        remaining = sorted(
            (w.get("name"), w.get("team")) for w in engine.wm
        )
        assert remaining == [
            ("Jack", "A"), ("Jack", "B"), ("Janice", "A"), ("Sue", "B"),
        ]

    def test_fires_unnecessarily_without_duplicates(self, make_engine,
                                                    matcher_name):
        """The paper's criticism: it cannot discern duplicates exist."""
        engine = make_engine(matcher_name)
        engine.load(PROGRAMS["AlternativeRemoveDups"])
        load_roster(engine, [("A", "x"), ("B", "y")])
        assert engine.run(limit=10) == 1  # fired despite nothing to do
        assert len(engine.wm) == 2  # and changed nothing
