"""Figure 4: ``GroupByTeam`` — nested foreach over set-oriented PVs.

The figure walks the iterations over the five-player WM: the single
instantiation decomposes by team first (B before A: conflict-set
order), then by name within each team; the two Sue WMEs share one
value-based subinstantiation, so Sue prints once.
"""

from tests.conftest import load_roster

GROUP_BY_TEAM = """
(literalize player name team)
(p GroupByTeam
  [player ^team <t> ^name <n>]
  -->
  (foreach <t>
    (write <t>)
    (foreach <n>
      (write <n>))))
"""


class TestFigure4:
    def test_single_instantiation(self, make_engine, matcher_name):
        engine = make_engine(matcher_name)
        engine.load(GROUP_BY_TEAM)
        load_roster(engine)
        assert engine.conflict_set_size() == 1

    def test_iteration_order_and_value_grouping(self, make_engine,
                                                matcher_name):
        engine = make_engine(matcher_name)
        engine.load(GROUP_BY_TEAM)
        load_roster(engine)
        assert engine.run(limit=5) == 1
        # First outer iteration <t> = B (more recent), inner Sue then
        # Jack; Sue appears once despite two WMEs.  Then team A.
        assert engine.output == ["B", "Sue", "Jack", "A", "Janice", "Jack"]

    def test_subinstantiation_constrained_as_figure_shows(
        self, make_engine
    ):
        """For <t>=B the subinstantiation is WMEs 3,4,5; for Sue, 3+5."""
        engine = make_engine()
        engine.load(
            """
            (literalize player name team)
            (p probe
              { [player ^team <t> ^name <n>] <P> }
              -->
              (foreach <t>
                (foreach <n>
                  (write <t> <n> (count <P>)))))
            """
        )
        load_roster(engine)
        engine.run(limit=2)
        # count <P> inside the narrowing counts the member WMEs of the
        # current subinstantiation.
        assert engine.output == [
            "B Sue 2",      # WMEs 3 and 5
            "B Jack 1",     # WME 4
            "A Janice 1",   # WME 2
            "A Jack 1",     # WME 1
        ]

    def test_inner_domain_constrained_by_outer_value(self, make_engine):
        engine = make_engine()
        engine.load(GROUP_BY_TEAM)
        load_roster(engine)
        engine.run(limit=2)
        # Janice never appears under team B.
        output = engine.output
        b_section = output[: output.index("A")]
        assert "Janice" not in b_section
