"""Figure 6: set-oriented DIPS — COND tables, WME-TAGS, the SOI query.

Reproduces the figure's exact state: ``rule-1`` over classes E and W,
four WMEs (two duplicate Mike/clerk W elements, two E salaries), the
COND-E/COND-W table contents, and the grouped SOI-retrieval result
(two groups, each pairing one E tag with W tags {1, 3}).
"""

import pytest

from repro import RuleEngine
from repro.dips import DipsMatcher

RULE_1 = """
(literalize E name salary)
(literalize W name job)
(p rule-1
  (E ^name <x> ^salary <s>)
  [W ^name <x> ^job clerk]
  -->
  (write matched))
"""


@pytest.fixture
def setup():
    matcher = DipsMatcher()
    engine = RuleEngine(matcher=matcher)
    engine.load(RULE_1)
    # The figure's WM, in time-tag order:
    engine.make("W", name="Mike", job="clerk")   # 1
    engine.make("E", name="Mike", salary=10000)  # 2
    engine.make("W", name="Mike", job="clerk")   # 3
    engine.make("E", name="Mike", salary=15000)  # 4
    return engine, matcher


class TestCondTables:
    def test_cond_e_contents(self, setup):
        engine, matcher = setup
        rows = matcher.store.cond_table("E").scan()
        template = [r for r in rows if r["wme_tag"] is None]
        instances = sorted(
            (r["wme_tag"], r["name"], r["salary"])
            for r in rows
            if r["wme_tag"] is not None
        )
        assert len(template) == 1
        assert template[0]["name"] == "<x>"
        assert template[0]["salary"] == "<s>"
        assert template[0]["rce"] == "(W,2)"
        assert instances == [(2, "Mike", 10000), (4, "Mike", 15000)]

    def test_cond_w_contents(self, setup):
        engine, matcher = setup
        rows = matcher.store.cond_table("W").scan()
        instances = sorted(
            (r["wme_tag"], r["name"], r["job"])
            for r in rows
            if r["wme_tag"] is not None
        )
        assert instances == [(1, "Mike", "clerk"), (3, "Mike", "clerk")]
        template = [r for r in rows if r["wme_tag"] is None][0]
        assert template["job"] == "clerk"  # the constant test is stored
        assert template["rce"] == "(E,1)"


class TestSoiQuery:
    def test_query_text_matches_figure_structure(self, setup):
        engine, matcher = setup
        sql = matcher.soi_query("rule-1")
        # The figure's query: select tags, join COND tables, require
        # NOT NULL tags, group by the scalar CE's tag.
        assert 'FROM "COND-E" AS c1, "COND-W" AS c2' in sql
        assert "c1.wme_tag IS NOT NULL" in sql
        assert "c2.wme_tag IS NOT NULL" in sql
        assert "GROUP BY c1.wme_tag" in sql

    def test_two_groups_as_in_figure(self, setup):
        engine, matcher = setup
        rows = matcher.soi_rows("rule-1")
        groups = sorted(
            (row["tag_1"], sorted(row["tags_2"])) for row in rows
        )
        # Group 1: E tag 2 with W tags {1, 3}; group 2: E tag 4 likewise.
        assert groups == [(2, [1, 3]), (4, [1, 3])]

    def test_conflict_set_mirrors_the_groups(self, setup):
        engine, matcher = setup
        instantiations = engine.conflict_set.of_rule("rule-1")
        assert len(instantiations) == 2
        shapes = sorted(
            (
                inst.wme_at(0).time_tag,
                sorted(t.wme_at(1).time_tag for t in inst.tokens()),
            )
            for inst in instantiations
        )
        assert shapes == [(2, [1, 3]), (4, [1, 3])]


class TestMultisetBehaviour:
    def test_duplicate_w_removal_shrinks_groups(self, setup):
        """Removing one duplicate Mike leaves both groups with one tag."""
        engine, matcher = setup
        wme = engine.wm.get(1)
        engine.remove(wme)
        rows = matcher.soi_rows("rule-1")
        groups = sorted(
            (row["tag_1"], sorted(row["tags_2"])) for row in rows
        )
        assert groups == [(2, [3]), (4, [3])]

    def test_rete_agrees_with_dips_on_figure6(self):
        """Cross-check: the extended Rete derives the same SOIs."""
        engine = RuleEngine()
        engine.load(RULE_1)
        engine.make("W", name="Mike", job="clerk")
        engine.make("E", name="Mike", salary=10000)
        engine.make("W", name="Mike", job="clerk")
        engine.make("E", name="Mike", salary=15000)
        shapes = sorted(
            (
                inst.wme_at(0).time_tag,
                sorted(t.wme_at(1).time_tag for t in inst.tokens()),
            )
            for inst in engine.conflict_set.of_rule("rule-1")
        )
        assert shapes == [(2, [1, 3]), (4, [1, 3])]
