"""Figure 2: set-oriented LHSs and their instantiations.

Two variants of ``compete`` over the Figure 1 working memory:

* both CEs set-oriented — **one** SOI containing all six sub-matches;
* first CE set-oriented, second regular — **three** SOIs, one per
  team-B player, each aggregating both team-A players.
"""

from tests.conftest import load_roster

ALL_SET = """
(literalize player name team)
(p compete
  [player ^name <n1> ^team A]
  [player ^name <n2> ^team B]
  -->
  (write competitions))
"""

MIXED = """
(literalize player name team)
(p compete
  [player ^name <n1> ^team A]
  (player ^name <n2> ^team B)
  -->
  (write competitions))
"""


def token_pairs(instantiation):
    return sorted(
        (t.wme_at(0).time_tag, t.wme_at(1).time_tag)
        for t in instantiation.tokens()
    )


class TestAllSetVariant:
    def test_single_soi(self, make_engine, matcher_name):
        engine = make_engine(matcher_name)
        engine.load(ALL_SET)
        load_roster(engine)
        instantiations = engine.conflict_set.of_rule("compete")
        assert len(instantiations) == 1

    def test_soi_contains_the_whole_relation(self, make_engine,
                                              matcher_name):
        engine = make_engine(matcher_name)
        engine.load(ALL_SET)
        load_roster(engine)
        [soi] = engine.conflict_set.of_rule("compete")
        assert token_pairs(soi) == [
            (1, 3), (1, 4), (1, 5), (2, 3), (2, 4), (2, 5),
        ]

    def test_one_firing_covers_everything(self, make_engine, matcher_name):
        engine = make_engine(matcher_name)
        engine.load(ALL_SET)
        load_roster(engine)
        assert engine.run(limit=10) == 1


class TestMixedVariant:
    def test_three_sois(self, make_engine, matcher_name):
        engine = make_engine(matcher_name)
        engine.load(MIXED)
        load_roster(engine)
        instantiations = engine.conflict_set.of_rule("compete")
        assert len(instantiations) == 3

    def test_regular_ce_partitions_the_relation(self, make_engine,
                                                matcher_name):
        """The figure's grouping: {1,2}x3, {1,2}x4, {1,2}x5."""
        engine = make_engine(matcher_name)
        engine.load(MIXED)
        load_roster(engine)
        groups = sorted(
            (
                inst.wme_at(1).time_tag,
                token_pairs(inst),
            )
            for inst in engine.conflict_set.of_rule("compete")
        )
        assert groups == [
            (3, [(1, 3), (2, 3)]),
            (4, [(1, 4), (2, 4)]),
            (5, [(1, 5), (2, 5)]),
        ]


class TestIncrementalBehaviour:
    def test_removing_a_player_updates_sois(self, make_engine,
                                            matcher_name):
        engine = make_engine(matcher_name)
        engine.load(MIXED)
        load_roster(engine)
        jack_b = engine.wm.find("player", name="Jack", team="B")[0]
        engine.remove(jack_b)
        assert len(engine.conflict_set.of_rule("compete")) == 2

    def test_removing_all_a_players_empties_conflict_set(
        self, make_engine, matcher_name
    ):
        engine = make_engine(matcher_name)
        engine.load(ALL_SET)
        load_roster(engine)
        for wme in engine.wm.find("player", team="A"):
            engine.remove(wme)
        assert engine.conflict_set_size() == 0
