"""Corner cases of the paper's semantics, cross-matcher.

Section 4.1's finer points: joins *between* set-oriented CEs, variables
spanning set and regular CEs, `:scalar` on variables occurring in
several set CEs, and negation interleaved with set CEs.
"""


class TestSetSetJoin:
    """'When a set-oriented PV occurs in two set-oriented CEs, the
    domain is reduced to the consistent values of the domains.'"""

    PROGRAM = """
    (literalize offer sku price)
    (literalize demand sku qty)
    (p match-market
      [offer ^sku <s>]
      [demand ^sku <s>]
      -->
      (foreach <s> ascending (write traded <s>)))
    """

    def test_domain_is_the_join(self, make_engine, matcher_name):
        engine = make_engine(matcher_name)
        engine.load(self.PROGRAM)
        engine.make("offer", sku="a", price=1)
        engine.make("offer", sku="b", price=2)
        engine.make("demand", sku="b", qty=1)
        engine.make("demand", sku="c", qty=1)
        engine.run(limit=2)
        # Only 'b' is consistent across both domains.
        assert engine.output == ["traded b"]

    def test_empty_join_means_no_soi(self, make_engine, matcher_name):
        engine = make_engine(matcher_name)
        engine.load(self.PROGRAM)
        engine.make("offer", sku="a", price=1)
        engine.make("demand", sku="z", qty=1)
        assert engine.conflict_set_size() == 0


class TestScalarAcrossSetCEs:
    """:scalar on a variable joining two set CEs partitions the SOI
    by the shared value."""

    PROGRAM = """
    (literalize offer sku price)
    (literalize demand sku qty)
    (p per-sku
      { [offer ^sku <s>] <O> }
      { [demand ^sku <s>] <D> }
      :scalar (<s>)
      -->
      (write <s> offers (count <O>) demands (count <D>)))
    """

    def test_partition_by_shared_value(self, make_engine, matcher_name):
        engine = make_engine(matcher_name)
        engine.load(self.PROGRAM)
        engine.make("offer", sku="a", price=1)
        engine.make("offer", sku="a", price=2)
        engine.make("offer", sku="b", price=3)
        engine.make("demand", sku="a", qty=1)
        engine.make("demand", sku="b", qty=1)
        engine.make("demand", sku="b", qty=2)
        assert engine.conflict_set_size() == 2
        engine.run(limit=5)
        assert sorted(engine.output) == [
            "a offers 2 demands 1",
            "b offers 1 demands 2",
        ]


class TestVariableSpanningSetAndRegular:
    """A PV in both a set CE and a regular CE is scalar: 'it is bound
    to ... the value occurring in the WME matching the regular CE.'"""

    PROGRAM = """
    (literalize dept name)
    (literalize emp dept pay)
    (p payroll
      (dept ^name <d>)
      { [emp ^dept <d> ^pay <p>] <E> }
      -->
      (write <d> pays (sum <E> ^pay)))
    """

    def test_regular_ce_partitions(self, make_engine, matcher_name):
        engine = make_engine(matcher_name)
        engine.load(self.PROGRAM)
        engine.make("dept", name="eng")
        engine.make("dept", name="ops")
        engine.make("emp", dept="eng", pay=10)
        engine.make("emp", dept="eng", pay=20)
        engine.make("emp", dept="ops", pay=5)
        assert engine.conflict_set_size() == 2
        engine.run(limit=5)
        assert sorted(engine.output) == ["eng pays 30", "ops pays 5"]


class TestNegationWithSets:
    def test_negation_between_set_ces(self, make_engine, matcher_name):
        engine = make_engine(matcher_name)
        engine.load(
            """
            (literalize item v)
            (literalize freeze on)
            (p sweep
              { [item] <S> }
              -(freeze ^on yes)
              -->
              (set-remove <S>))
            """
        )
        engine.make("item", v=1)
        engine.make("freeze", on="yes")
        engine.make("item", v=2)
        assert engine.conflict_set_size() == 0
        engine.remove(engine.wm.find("freeze")[0])
        assert engine.conflict_set_size() == 1
        engine.run(limit=2)
        assert not engine.wm.find("item")

    def test_negation_joined_on_scalar_value(self, make_engine,
                                             matcher_name):
        engine = make_engine(matcher_name)
        engine.load(
            """
            (literalize emp dept pay)
            (literalize audit dept)
            (p unaudited
              { [emp ^dept <d>] <E> }
              :scalar (<d>)
              -(audit ^dept <d>)
              -->
              (write unaudited <d>))
            """
        )
        engine.make("emp", dept="eng", pay=1)
        engine.make("emp", dept="ops", pay=1)
        engine.make("audit", dept="eng")
        engine.run(limit=5)
        assert engine.output == ["unaudited ops"]


class TestAggregateDomainSemantics:
    def test_pv_aggregate_is_over_distinct_values(self, make_engine,
                                                  matcher_name):
        """§4.1: a PV's domain is a SET of values."""
        engine = make_engine(matcher_name)
        engine.load(
            """
            (literalize item v)
            (p sum-domain
              [item ^v <v>]
              :test ((sum <v>) == 3)
              -->
              (write domain-sum-3))
            """
        )
        engine.make("item", v=1)
        engine.make("item", v=2)
        engine.make("item", v=2)  # duplicate VALUE: domain {1, 2}
        engine.run(limit=2)
        assert engine.output == ["domain-sum-3"]

    def test_ce_aggregate_is_over_member_wmes(self, make_engine,
                                              matcher_name):
        engine = make_engine(matcher_name)
        engine.load(
            """
            (literalize item v)
            (p sum-members
              { [item ^v <v>] <S> }
              :test ((sum <S> ^v) == 5)
              -->
              (write member-sum-5))
            """
        )
        engine.make("item", v=1)
        engine.make("item", v=2)
        engine.make("item", v=2)  # three WMEs: 1 + 2 + 2
        engine.run(limit=2)
        assert engine.output == ["member-sum-5"]
