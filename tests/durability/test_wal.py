"""Unit tests for the segmented, CRC32-framed write-ahead log."""

import os

import pytest

from repro.durability.wal import (
    DEFAULT_SEGMENT_BYTES,
    MAGIC,
    WriteAheadLog,
    encode_record,
    list_segments,
    read_log_tail,
    scan_segment,
    segment_name,
    truncate_after,
)
from repro.engine.stats import MatchStats
from repro.errors import RecoveryError, WalError


def _payloads(n, size=0):
    pad = "x" * size
    return [{"k": "d", "i": i, "pad": pad} for i in range(n)]


class TestFraming:
    def test_encode_scan_round_trip(self):
        records = _payloads(5)
        data = b"".join(encode_record(p) for p in records)
        payloads, end, damage = scan_segment(data)
        assert payloads == records
        assert end == len(data)
        assert damage is None

    def test_scan_from_offset(self):
        records = _payloads(3)
        frames = [encode_record(p) for p in records]
        data = b"".join(frames)
        payloads, end, damage = scan_segment(data, start=len(frames[0]))
        assert payloads == records[1:]
        assert damage is None

    def test_torn_final_frame_is_tail_damage(self):
        data = b"".join(encode_record(p) for p in _payloads(2))
        payloads, end, damage = scan_segment(data[:-3])
        assert len(payloads) == 1
        assert damage is not None
        assert damage.reason == "torn"
        assert not damage.trailing

    def test_flipped_bit_in_final_record(self):
        data = bytearray(b"".join(encode_record(p) for p in _payloads(2)))
        data[-1] ^= 0x01
        payloads, end, damage = scan_segment(bytes(data))
        assert len(payloads) == 1
        assert damage.reason == "crc"
        assert not damage.trailing

    def test_flipped_bit_mid_log_leaves_trailing_evidence(self):
        frames = [encode_record(p) for p in _payloads(3, size=8)]
        data = bytearray(b"".join(frames))
        data[len(frames[0]) + 12] ^= 0x01  # payload byte of record 2
        payloads, end, damage = scan_segment(bytes(data))
        assert len(payloads) == 1
        assert damage.trailing  # MAGIC of record 3 follows the damage

    def test_implausible_length_is_frame_damage(self):
        import struct

        bogus = MAGIC + struct.pack("<II", 1 << 30, 0)
        payloads, end, damage = scan_segment(bogus)
        assert payloads == []
        assert damage.reason == "frame"

    def test_fake_magic_in_torn_tail_is_not_trailing_evidence(self):
        # The magic sequence appearing in garbage (or in payload
        # bytes — 0xAB is a valid UTF-8 continuation byte) is not
        # proof of durable records after the damage: only a candidate
        # that parses and passes its CRC may escalate a tolerable torn
        # tail to silent corruption.
        frame = encode_record({"k": "d", "i": 1})
        data = frame + b"garbage" + MAGIC + b"more-garbage"
        payloads, end, damage = scan_segment(data)
        assert len(payloads) == 1
        assert damage is not None
        assert not damage.trailing

    def test_valid_frame_after_damage_is_trailing_evidence(self):
        frame = encode_record({"k": "d", "i": 1})
        tail = encode_record({"k": "d", "i": 2})
        payloads, end, damage = scan_segment(frame + b"junk" + tail)
        assert len(payloads) == 1
        assert damage.trailing


class TestAppend:
    def test_round_trip_with_positions(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        positions = [wal.append(p) for p in _payloads(4)]
        assert positions[-1] == wal.tell()
        wal.close()
        payloads, end, damage = read_log_tail(tmp_path)
        assert payloads == _payloads(4)
        assert end == positions[-1]
        assert damage is None

    def test_segment_rollover(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off", segment_bytes=120)
        for p in _payloads(8, size=40):
            wal.append(p)
        wal.close()
        segments = list_segments(tmp_path)
        assert len(segments) > 1
        assert [seq for seq, _ in segments] == list(
            range(1, len(segments) + 1)
        )
        payloads, _, _ = read_log_tail(tmp_path)
        assert payloads == _payloads(8, size=40)

    def test_reopen_resumes_after_clean_close(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        wal.append({"k": "d", "i": 1})
        wal.close()
        wal = WriteAheadLog(tmp_path, fsync="off")
        wal.append({"k": "d", "i": 2})
        wal.close()
        payloads, _, _ = read_log_tail(tmp_path)
        assert [p["i"] for p in payloads] == [1, 2]

    def test_reopen_truncates_torn_tail(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        wal.append({"k": "d", "i": 1})
        wal.append({"k": "d", "i": 2})
        wal.close()
        path = list_segments(tmp_path)[-1][1]
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 3)
        wal = WriteAheadLog(tmp_path, fsync="off")
        wal.append({"k": "d", "i": 3})
        wal.close()
        payloads, _, damage = read_log_tail(tmp_path)
        assert [p["i"] for p in payloads] == [1, 3]
        assert damage is None  # the torn bytes were cut at reopen

    def test_reopen_refuses_corruption_before_valid_records(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        wal.append(_payloads(1, size=8)[0])
        wal.append(_payloads(1, size=8)[0])
        wal.close()
        path = list_segments(tmp_path)[-1][1]
        with open(path, "r+b") as handle:
            handle.seek(14)  # payload byte of the first record
            byte = handle.read(1)[0]
            handle.seek(14)
            handle.write(bytes([byte ^ 0x01]))
        with pytest.raises(WalError, match="corrupt"):
            WriteAheadLog(tmp_path, fsync="off")

    def test_append_after_close_fails(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        wal.close()
        with pytest.raises(WalError, match="closed"):
            wal.append({"k": "d"})

    def test_bad_policy_and_segment_size(self, tmp_path):
        with pytest.raises(WalError, match="fsync"):
            WriteAheadLog(tmp_path, fsync="sometimes")
        with pytest.raises(WalError, match="positive"):
            WriteAheadLog(tmp_path, segment_bytes=0)

    def test_truncate_before_drops_old_segments(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off", segment_bytes=80)
        for p in _payloads(10, size=40):
            wal.append(p)
        seq, _ = wal.tell()
        assert seq > 2
        removed = wal.truncate_before(seq)
        assert removed == seq - 1
        assert [s for s, _ in list_segments(tmp_path)] == [seq]
        wal.close()


class TestFsyncPolicies:
    def _fsyncs(self, tmp_path, policy, batches):
        stats = MatchStats()
        wal = WriteAheadLog(tmp_path, fsync=policy, stats=stats)
        for batch in batches:
            wal.append({"k": "d"}, batch=batch)
        wal.close()
        return stats.counters.get("wal_fsyncs", 0)

    def test_always_fsyncs_every_record(self, tmp_path):
        # 4 appends + 1 close
        assert self._fsyncs(tmp_path, "always", [False] * 4) == 5

    def test_batch_fsyncs_batch_records_only(self, tmp_path):
        # 2 batch records + 1 close
        assert (
            self._fsyncs(tmp_path, "batch", [True, False, True, False])
            == 3
        )

    def test_off_never_fsyncs(self, tmp_path):
        assert self._fsyncs(tmp_path, "off", [True, False]) == 0

    def test_rollover_fsyncs_the_outgoing_segment(self, tmp_path):
        # A durable record in segment N+1 must imply all of segment N
        # is durable, even when no record in N was individually
        # fsynced — otherwise a power failure could damage a non-final
        # segment and recovery would refuse the whole log.
        stats = MatchStats()
        wal = WriteAheadLog(
            tmp_path, fsync="batch", segment_bytes=120, stats=stats
        )
        for p in _payloads(8, size=40):
            wal.append(p, batch=False)  # no per-record fsyncs
        rollovers = len(list_segments(tmp_path)) - 1
        assert rollovers > 0
        assert stats.counters["wal_fsyncs"] == rollovers
        wal.close()
        assert stats.counters["wal_fsyncs"] == rollovers + 1

    def test_rollover_never_fsyncs_under_off(self, tmp_path):
        stats = MatchStats()
        wal = WriteAheadLog(
            tmp_path, fsync="off", segment_bytes=120, stats=stats
        )
        for p in _payloads(8, size=40):
            wal.append(p)
        assert len(list_segments(tmp_path)) > 1
        wal.close()
        assert stats.counters.get("wal_fsyncs", 0) == 0

    def test_append_and_byte_counters(self, tmp_path):
        stats = MatchStats()
        wal = WriteAheadLog(tmp_path, fsync="off", stats=stats)
        wal.append({"k": "d"})
        wal.append({"k": "d"})
        wal.close()
        assert stats.counters["wal_appends"] == 2
        assert stats.counters["wal_bytes"] == 2 * len(
            encode_record({"k": "d"})
        )


class TestReadLogTail:
    def test_start_past_checkpoint(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        wal.append({"i": 1})
        mid = wal.append({"i": 2})
        wal.append({"i": 3})
        wal.close()
        payloads, _, _ = read_log_tail(tmp_path, start=mid)
        assert [p["i"] for p in payloads] == [3]

    def test_missing_directory(self, tmp_path):
        with pytest.raises(RecoveryError, match="no write-ahead log"):
            read_log_tail(tmp_path / "nope")

    def test_missing_start_segment(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        wal.append({"i": 1})
        wal.close()
        with pytest.raises(RecoveryError, match="missing"):
            read_log_tail(tmp_path, start=(7, 0))

    def test_non_consecutive_segments(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off", segment_bytes=60)
        for p in _payloads(6, size=30):
            wal.append(p)
        wal.close()
        segments = list_segments(tmp_path)
        assert len(segments) >= 3
        os.remove(segments[1][1])
        with pytest.raises(RecoveryError, match="not consecutive"):
            read_log_tail(tmp_path)

    def test_start_beyond_segment_size(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        wal.append({"i": 1})
        wal.close()
        with pytest.raises(RecoveryError, match="beyond"):
            read_log_tail(tmp_path, start=(1, 10_000))

    def test_damage_in_non_final_segment_refused(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off", segment_bytes=60)
        for p in _payloads(6, size=30):
            wal.append(p)
        wal.close()
        first = list_segments(tmp_path)[0][1]
        with open(first, "r+b") as handle:
            handle.truncate(os.path.getsize(first) - 2)
        with pytest.raises(RecoveryError, match="corrupt"):
            read_log_tail(tmp_path)

    def test_defaults(self):
        assert DEFAULT_SEGMENT_BYTES == 1 << 20
        assert segment_name(3) == "00000003.wal"


class TestTruncateAfter:
    def test_cuts_within_a_segment(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        for p in _payloads(5):
            wal.append(p)
        wal.close()
        cut = truncate_after(tmp_path, None, 3)
        payloads, end, damage = read_log_tail(tmp_path)
        assert payloads == _payloads(3)
        assert end == cut
        assert damage is None

    def test_cuts_across_segments_and_removes_later_ones(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off", segment_bytes=80)
        for p in _payloads(10, size=40):
            wal.append(p)
        wal.close()
        assert len(list_segments(tmp_path)) > 3
        truncate_after(tmp_path, None, 2)
        payloads, _, damage = read_log_tail(tmp_path)
        assert payloads == _payloads(2, size=40)
        assert damage is None

    def test_respects_the_start_position(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        wal.append({"i": 1})
        start = wal.append({"i": 2})
        wal.append({"i": 3})
        wal.append({"i": 4})
        wal.close()
        truncate_after(tmp_path, start, 1)
        payloads, _, _ = read_log_tail(tmp_path)
        assert [p["i"] for p in payloads] == [1, 2, 3]

    def test_nothing_to_cut_returns_none(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        for p in _payloads(2):
            wal.append(p)
        wal.close()
        assert truncate_after(tmp_path, None, 5) is None
        payloads, _, _ = read_log_tail(tmp_path)
        assert payloads == _payloads(2)

    def test_cut_also_drops_damaged_tail_bytes(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        for p in _payloads(3):
            wal.append(p)
        wal.close()
        path = list_segments(tmp_path)[-1][1]
        with open(path, "ab") as handle:
            handle.write(b"torn-tail-bytes")
        truncate_after(tmp_path, None, 2)
        payloads, _, damage = read_log_tail(tmp_path)
        assert payloads == _payloads(2)
        assert damage is None
