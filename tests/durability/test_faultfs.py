"""Unit tests for the fault-injection harness."""

import pytest

from repro.durability.faultfs import (
    FaultInjector,
    SimulatedCrash,
    corrupt_record,
    tear_tail,
    truncate_tail,
)
from repro.durability.wal import WriteAheadLog, read_log_tail
from repro.errors import RecoveryError, ReproError


def _filled_log(tmp_path, n=4):
    wal = WriteAheadLog(tmp_path, fsync="off")
    for i in range(n):
        wal.append({"k": "d", "i": i, "pad": "x" * 16})
    wal.close()


class TestSimulatedCrash:
    def test_not_a_repro_error(self):
        # Production handlers catch ReproError; a simulated crash must
        # never be swallowed by them.
        assert not issubclass(SimulatedCrash, ReproError)

    def test_crash_on_nth_hit(self):
        fault = FaultInjector(crash_at={"wal.fsync": 3})
        fault.hit("wal.fsync")
        fault.hit("wal.fsync")
        assert not fault.crashed
        with pytest.raises(SimulatedCrash, match="wal.fsync"):
            fault.hit("wal.fsync")
        assert fault.crashed
        assert fault.counts["wal.fsync"] == 3

    def test_other_points_pass_through(self):
        fault = FaultInjector(crash_at={"checkpoint.rename": 1})
        fault.hit("wal.append.before")
        with pytest.raises(SimulatedCrash):
            fault.hit("checkpoint.rename")

    def test_partial_write_fraction(self):
        fault = FaultInjector(torn_append=(2, 0.5))
        assert fault.partial_write("wal.append", 100) is None
        assert fault.partial_write("wal.append", 100) == 50
        assert fault.partial_write("wal.append", 100) is None

    def test_partial_write_never_full_frame(self):
        fault = FaultInjector(torn_append=(1, 500))
        assert fault.partial_write("wal.append", 40) == 39


class TestTornAppendThroughWal:
    def test_torn_append_crashes_and_recovery_drops_it(self, tmp_path):
        fault = FaultInjector(torn_append=(3, 0.5))
        wal = WriteAheadLog(tmp_path, fsync="off", fault=fault)
        wal.append({"i": 1})
        wal.append({"i": 2})
        with pytest.raises(SimulatedCrash, match="torn write"):
            wal.append({"i": 3})
        # Recovery tolerates the torn final record, losing only it.
        payloads, _, damage = read_log_tail(tmp_path)
        assert [p["i"] for p in payloads] == [1, 2]
        assert damage is not None and damage.reason == "torn"


class TestAtRestCorruptors:
    def test_tear_tail(self, tmp_path):
        _filled_log(tmp_path)
        cut = tear_tail(tmp_path, keep=0.5)
        assert cut > 0
        payloads, _, damage = read_log_tail(tmp_path)
        assert [p["i"] for p in payloads] == [0, 1, 2]
        assert damage is not None

    def test_truncate_tail(self, tmp_path):
        _filled_log(tmp_path)
        truncate_tail(tmp_path, 5)
        payloads, _, damage = read_log_tail(tmp_path)
        assert [p["i"] for p in payloads] == [0, 1, 2]
        assert damage is not None

    def test_corrupt_final_record_is_tolerated(self, tmp_path):
        _filled_log(tmp_path)
        corrupt_record(tmp_path, index=-1)
        payloads, _, damage = read_log_tail(tmp_path)
        assert [p["i"] for p in payloads] == [0, 1, 2]
        assert damage is not None and damage.reason == "crc"

    def test_corrupt_middle_record_is_refused(self, tmp_path):
        _filled_log(tmp_path)
        corrupt_record(tmp_path, index=1)
        with pytest.raises(RecoveryError, match="refusing"):
            read_log_tail(tmp_path)

    def test_corruptors_need_segments(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            tear_tail(tmp_path)
