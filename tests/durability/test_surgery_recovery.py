"""Recovery of WAL-logged rule surgery: replay, atomicity, manifests.

Runtime ``add_rule`` / ``excise`` / ``replace_rule`` are rule-base
change records in the WAL (``p`` / ``x`` / ``P``), replayed in order
by ``RuleEngine.recover()`` so a crashed session comes back with the
rules it actually had — not the rules it started with.  ``replace``
is ONE record: a crash can land before it (old rule intact) or after
it (swap complete) but never in between with both or neither rule.
Checkpoint manifests carry the rule-base version hash of the live
program, so a manifest taken after surgery names the post-surgery
program.
"""

import json
import os
import shutil

import pytest

from repro import DurabilityConfig, RuleEngine
from repro.dips.matcher import DipsMatcher
from repro.durability.checkpoint import (
    MANIFEST_NAME,
    program_source,
    read_current,
    rule_base_version,
)
from repro.durability.wal import SEGMENT_SUFFIX
from repro.match import NaiveMatcher, TreatMatcher
from repro.rete import ReteNetwork
from repro.rete.sharded import ShardedReteNetwork

PROGRAM = """
(literalize item owner v)
(literalize owner name)
(p pair (item ^owner <o> ^v <v>) (owner ^name <o>) --> (write <o> <v>))
"""

REPLACEMENT = (
    "(p pair (item ^v {<v> > 2}) --> (write big <v>))"
)

EXTRA = "(p solo (owner ^name <o>) --> (write solo <o>))"

MATCHERS = {
    "rete": ReteNetwork,
    "treat": TreatMatcher,
    "naive": NaiveMatcher,
    "dips": DipsMatcher,
    "sharded": lambda: ShardedReteNetwork(shards=2),
}


def _surgery_script(engine):
    """Facts + surgery interleaved; same script drives live and oracle."""
    engine.make("item", owner="a", v=1)
    engine.make("owner", name="a")
    engine.run(limit=1)
    engine.add_rule(EXTRA)
    engine.make("owner", name="b")
    engine.replace_rule("pair", REPLACEMENT)
    engine.make("item", owner="b", v=5)
    engine.excise("solo")
    engine.make("owner", name="c")


def wm_state(engine):
    return sorted(
        (w.time_tag, w.wme_class, tuple(sorted(w.as_dict().items())))
        for w in engine.wm
    )


def firing_trace(engine, limit=30):
    trace = []
    for _ in range(limit):
        inst = engine.step()
        if inst is None:
            break
        trace.append((inst.rule.name, tuple(inst.recency_key())))
    return trace


def _segments(directory):
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.endswith(SEGMENT_SUFFIX)
    )


class TestSurgeryReplay:
    @pytest.mark.parametrize("matcher", sorted(MATCHERS))
    def test_recovered_rules_and_state_match_live(self, matcher,
                                                  tmp_path):
        durable = RuleEngine(
            matcher=MATCHERS[matcher](),
            durability=DurabilityConfig(tmp_path, fsync="off"),
        )
        durable.load(PROGRAM)
        _surgery_script(durable)
        # Abrupt stop (no close); recover and compare to an oracle
        # that ran the same script without durability.
        recovered = RuleEngine.recover(tmp_path, durability=False)
        oracle = RuleEngine(matcher=MATCHERS[matcher]())
        oracle.load(PROGRAM)
        _surgery_script(oracle)
        # Recovery replays state, not past side effects: compare only
        # post-recovery output.
        oracle.tracer.output.clear()
        assert sorted(recovered.rules) == sorted(oracle.rules)
        assert wm_state(recovered) == wm_state(oracle)
        assert firing_trace(recovered) == firing_trace(oracle)
        assert recovered.output == oracle.output

    def test_recovered_replacement_rule_behaves_as_replaced(self,
                                                            tmp_path):
        durable = RuleEngine(
            durability=DurabilityConfig(tmp_path, fsync="off")
        )
        durable.load(PROGRAM)
        durable.replace_rule("pair", REPLACEMENT)
        recovered = RuleEngine.recover(tmp_path, durability=False)
        assert sorted(recovered.rules) == ["pair"]
        # The *new* body matches, not the old join.
        recovered.make("item", owner="x", v=9)
        assert recovered.run() == 1
        assert recovered.output == ["big 9"]

    def test_surgery_after_checkpoint_replays_from_tail(self, tmp_path):
        durable = RuleEngine(
            durability=DurabilityConfig(tmp_path, fsync="off")
        )
        durable.load(PROGRAM)
        durable.make("item", owner="a", v=1)
        durable.checkpoint()
        durable.replace_rule("pair", REPLACEMENT)
        durable.add_rule(EXTRA)
        recovered = RuleEngine.recover(tmp_path, durability=False)
        assert sorted(recovered.rules) == ["pair", "solo"]
        recovered.make("item", owner="a", v=7)
        recovered.run()
        assert "big 7" in recovered.output


class TestReplaceAtomicity:
    def _wal_with_pending_replace(self, tmp_path):
        """WAL bytes before and after a single replace record."""
        root = tmp_path / "wal"
        durable = RuleEngine(
            durability=DurabilityConfig(root, fsync="off")
        )
        durable.load(PROGRAM)
        durable.make("item", owner="a", v=1)
        before = {p: os.path.getsize(p) for p in _segments(root)}
        durable.replace_rule("pair", REPLACEMENT)
        segments = _segments(root)
        assert segments and before, "expected live WAL segments"
        # The replace landed in the final segment.
        tail = segments[-1]
        start = before.get(tail, 0)
        end = os.path.getsize(tail)
        assert end > start, "replace wrote no WAL record"
        return root, tail, start, end

    def _truncated_recover(self, tmp_path, root, tail, size, label):
        clone = tmp_path / f"clone-{label}"
        shutil.copytree(root, clone)
        with open(clone / os.path.basename(tail), "r+b") as handle:
            handle.truncate(size)
        return RuleEngine.recover(clone, durability=False)

    def test_torn_replace_record_keeps_old_rule(self, tmp_path):
        root, tail, start, end = self._wal_with_pending_replace(tmp_path)
        # Truncate at several points inside the P frame: the replace
        # must be invisible — old rule intact, new body absent.
        cuts = sorted({start, start + 1, (start + end) // 2, end - 1})
        for size in cuts:
            recovered = self._truncated_recover(
                tmp_path, root, tail, size, size
            )
            assert sorted(recovered.rules) == ["pair"], (
                f"cut at {size} (frame {start}..{end})"
            )
            if size > start:
                assert recovered.recovery_report.tail_damaged
            # Old join body still live: needs owner+item to match.
            recovered.make("item", owner="z", v=9)
            assert recovered.run() == 0
            recovered.make("owner", name="z")
            assert recovered.run() == 1
            assert recovered.output == ["z 9"]

    def test_complete_replace_record_swaps_rule(self, tmp_path):
        root, tail, start, end = self._wal_with_pending_replace(tmp_path)
        recovered = self._truncated_recover(
            tmp_path, root, tail, end, "full"
        )
        assert sorted(recovered.rules) == ["pair"]
        recovered.make("item", owner="z", v=9)
        assert recovered.run() == 1
        assert recovered.output == ["big 9"]


class TestManifestVersion:
    def _current_manifest(self, root):
        name = read_current(root)
        assert name is not None
        with open(os.path.join(root, name, MANIFEST_NAME),
                  encoding="utf-8") as handle:
            return json.load(handle)

    def test_manifest_hash_tracks_live_program(self, tmp_path):
        durable = RuleEngine(
            durability=DurabilityConfig(tmp_path, fsync="off")
        )
        durable.load(PROGRAM)
        durable.checkpoint()
        manifest = self._current_manifest(tmp_path)
        expected = rule_base_version(program_source(durable))
        assert manifest["rule_base_version"] == expected

        durable.replace_rule("pair", REPLACEMENT)
        durable.checkpoint()
        after = self._current_manifest(tmp_path)
        changed = rule_base_version(program_source(durable))
        assert after["rule_base_version"] == changed
        assert after["rule_base_version"] != manifest["rule_base_version"]

    def test_recover_from_post_surgery_checkpoint(self, tmp_path):
        durable = RuleEngine(
            durability=DurabilityConfig(tmp_path, fsync="off")
        )
        durable.load(PROGRAM)
        durable.replace_rule("pair", REPLACEMENT)
        durable.add_rule(EXTRA)
        durable.checkpoint()
        recovered = RuleEngine.recover(tmp_path, durability=False)
        assert sorted(recovered.rules) == ["pair", "solo"]
        assert (
            rule_base_version(program_source(recovered))
            == rule_base_version(program_source(durable))
        )
