"""Unit tests for atomic checkpoints and their validation."""

import json
import os

import pytest

from repro import RuleEngine
from repro.durability.checkpoint import (
    build_matcher,
    checkpoint_dirname,
    list_checkpoints,
    load_checkpoint,
    matcher_name,
    program_source,
    prune_checkpoints,
    read_current,
    write_checkpoint,
)
from repro.errors import DurabilityError, RecoveryError
from repro.wm.snapshot import dump_wm


def _write(tmp_path, **overrides):
    kwargs = dict(
        wm_snapshot={"version": 1, "next_tag": 1, "wmes": []},
        wal_position=(1, 0),
        next_tag=1,
        program="",
        matcher_name="rete",
        strategy_name="lex",
        fired=[],
        cycle_count=0,
    )
    kwargs.update(overrides)
    return write_checkpoint(str(tmp_path), **kwargs)


class TestWriteLoad:
    def test_round_trip(self, tmp_path):
        path = _write(
            tmp_path,
            wm_snapshot={"version": 1, "next_tag": 3,
                         "wmes": [{"class": "a", "tag": 2, "values": {}}]},
            wal_position=(2, 17),
            next_tag=3,
            program="(literalize a)",
            cycle_count=5,
        )
        assert os.path.basename(path) == checkpoint_dirname(1)
        assert read_current(str(tmp_path)) == checkpoint_dirname(1)
        loaded = load_checkpoint(str(tmp_path))
        assert loaded.manifest["wal"] == [2, 17]
        assert loaded.manifest["next_tag"] == 3
        assert loaded.manifest["cycle_count"] == 5
        assert loaded.manifest["program"] == "(literalize a)"
        assert loaded.wm_snapshot["wmes"][0]["class"] == "a"

    def test_sequence_numbers_advance(self, tmp_path):
        _write(tmp_path)
        path = _write(tmp_path)
        assert os.path.basename(path) == checkpoint_dirname(2)
        assert read_current(str(tmp_path)) == checkpoint_dirname(2)

    def test_no_current_means_none(self, tmp_path):
        assert load_checkpoint(str(tmp_path)) is None

    def test_members_are_wm_and_manifest_only(self, tmp_path):
        path = _write(tmp_path)
        assert sorted(os.listdir(path)) == ["MANIFEST.json", "wm.json"]


class TestValidation:
    def test_crc_mismatch_refused(self, tmp_path):
        path = _write(tmp_path)
        member = os.path.join(path, "wm.json")
        with open(member, "a") as handle:
            handle.write(" ")
        with pytest.raises(RecoveryError, match="CRC"):
            load_checkpoint(str(tmp_path))

    def test_missing_member_refused(self, tmp_path):
        path = _write(tmp_path)
        os.remove(os.path.join(path, "wm.json"))
        with pytest.raises(RecoveryError, match="missing member"):
            load_checkpoint(str(tmp_path))

    def test_current_naming_missing_checkpoint_refused(self, tmp_path):
        _write(tmp_path)
        with open(tmp_path / "CURRENT", "w") as handle:
            handle.write("checkpoint-00000099\n")
        with pytest.raises(RecoveryError, match="no such checkpoint"):
            load_checkpoint(str(tmp_path))

    def test_version_mismatch_refused(self, tmp_path):
        path = _write(tmp_path)
        manifest_path = os.path.join(path, "MANIFEST.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["version"] = 99
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(RecoveryError, match="version"):
            load_checkpoint(str(tmp_path))

    def test_unreadable_manifest_refused(self, tmp_path):
        path = _write(tmp_path)
        with open(os.path.join(path, "MANIFEST.json"), "w") as handle:
            handle.write("{not json")
        with pytest.raises(RecoveryError, match="unreadable manifest"):
            load_checkpoint(str(tmp_path))


class TestPrune:
    def test_retains_newest_and_clears_tmp(self, tmp_path):
        for _ in range(4):
            _write(tmp_path)
        leftover = tmp_path / "checkpoint-00000099.tmp"
        leftover.mkdir()
        removed = prune_checkpoints(str(tmp_path), retain=2)
        kept = [seq for seq, _ in list_checkpoints(str(tmp_path))]
        assert kept == [3, 4]
        assert len(removed) == 2
        assert not leftover.exists()

    def test_never_removes_current(self, tmp_path):
        for _ in range(3):
            _write(tmp_path)
        # Point CURRENT at the oldest; prune must spare it.
        with open(tmp_path / "CURRENT", "w") as handle:
            handle.write(checkpoint_dirname(1) + "\n")
        prune_checkpoints(str(tmp_path), retain=1)
        kept = [seq for seq, _ in list_checkpoints(str(tmp_path))]
        assert 1 in kept


class TestEngineSupport:
    def test_program_source_round_trips(self):
        program = """
        (literalize player name team)
        (p hello (player ^name <n>) --> (write hi <n>))
        """
        engine = RuleEngine()
        engine.load(program)
        source = program_source(engine)
        clone = RuleEngine()
        clone.load(source)
        assert set(clone.rules) == {"hello"}
        assert clone.wm.registry.attributes_of("player") == (
            "name", "team",
        )

    def test_matcher_names(self):
        from repro.match import NaiveMatcher, TreatMatcher
        from repro.rete import ReteNetwork

        assert matcher_name(ReteNetwork()) == "rete"
        assert matcher_name(TreatMatcher()) == "treat"
        assert matcher_name(NaiveMatcher()) == "naive"
        assert matcher_name(object()) is None

    def test_build_matcher(self):
        from repro.rete import ReteNetwork

        assert type(build_matcher("rete")) is ReteNetwork
        with pytest.raises(DurabilityError, match="unknown matcher"):
            build_matcher("oracle")

    def test_dump_wm_feeds_checkpoint(self, tmp_path):
        engine = RuleEngine()
        engine.make("a", x=1)
        _write(tmp_path, wm_snapshot=dump_wm(engine.wm))
        loaded = load_checkpoint(str(tmp_path))
        assert loaded.wm_snapshot["wmes"][0]["values"] == {"x": 1}
