"""Checkpoints on the sqlite storage backend: binary members + priming.

A DIPS engine on the sqlite backend checkpoints its whole COND-table
database as one ``dips.sqlite3`` member (captured through sqlite's
backup API), and the manifest records the backend spec.  Recovery must

* prime the matcher from the member instead of recomputing every
  instance row, yet end up in *exactly* the state full recomputation
  yields;
* rebuild on the recorded backend when the caller does not say
  otherwise, and honour an explicit override;
* CRC-check binary members like any other;
* keep memory-backed checkpoints byte-compatible with before (no
  ``binary`` section at all).
"""

import json
import os

import pytest

from repro import DurabilityConfig, RuleEngine
from repro.dips import DipsMatcher
from repro.durability.checkpoint import (
    DIPS_DB_NAME,
    MANIFEST_NAME,
    read_current,
)
from repro.errors import RecoveryError
from repro.rdb.memory_backend import MemoryBackend
from repro.rdb.sqlite_backend import SqliteBackend

PROGRAM = """
(literalize item owner v)
(literalize owner name)
(literalize tally owner total)
(p tally-owner
  (owner ^name <o>)
  { [item ^owner <o> ^v <v>] <S> }
  :test ((count <S>) >= 1)
  -->
  (make tally ^owner <o> ^total (sum <S> ^v))
  (write tallied <o>))
"""


def wm_state(engine):
    return sorted(
        (w.time_tag, w.wme_class, tuple(sorted(w.as_dict().items())))
        for w in engine.wm
    )


def cond_state(matcher):
    """Every COND table's full contents, comparable across backends."""
    state = {}
    for name in matcher.db.table_names():
        table = matcher.db.table(name)
        state[name] = [
            (rid, tuple(sorted(row.items()))) for rid, row in table.rows()
        ]
    return state


def _workload(wal_dir, backend):
    engine = RuleEngine(
        matcher=DipsMatcher(backend=backend),
        durability=DurabilityConfig(wal_dir, fsync="off"),
    )
    engine.load(PROGRAM)
    with engine.batch():
        for name in ("ann", "bob"):
            engine.make("owner", name=name)
        for i in range(4):
            engine.make("item", owner=("ann", "bob")[i % 2], v=i)
    engine.run()
    return engine


def _manifest(wal_dir):
    current = read_current(str(wal_dir))
    with open(os.path.join(str(wal_dir), current, MANIFEST_NAME)) as fh:
        return json.load(fh), os.path.join(str(wal_dir), current)


class TestSqliteCheckpointMember:
    def test_manifest_records_member_and_backend(self, tmp_path):
        engine = _workload(tmp_path, SqliteBackend())
        engine.checkpoint()
        manifest, path = _manifest(tmp_path)
        assert manifest["binary"] == [DIPS_DB_NAME]
        assert manifest["rdb_backend"] == "sqlite"
        assert DIPS_DB_NAME in manifest["files"]
        assert os.path.exists(os.path.join(path, DIPS_DB_NAME))
        engine.close()

    def test_file_backed_spec_recorded(self, tmp_path):
        db_path = str(tmp_path / "cond.db")
        engine = _workload(
            tmp_path / "wal", SqliteBackend(db_path)
        )
        engine.checkpoint()
        manifest, _ = _manifest(tmp_path / "wal")
        assert manifest["rdb_backend"] == f"sqlite:{db_path}"
        engine.close()

    def test_memory_checkpoint_unchanged(self, tmp_path):
        engine = _workload(tmp_path, MemoryBackend())
        engine.checkpoint()
        manifest, path = _manifest(tmp_path)
        assert "binary" not in manifest
        assert "rdb_backend" not in manifest
        assert not os.path.exists(os.path.join(path, DIPS_DB_NAME))
        engine.close()


class TestPrimedRecovery:
    def test_recovery_rebuilds_on_recorded_backend(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.delenv("REPRO_RDB_BACKEND", raising=False)
        engine = _workload(tmp_path, SqliteBackend())
        engine.checkpoint()
        recovered = RuleEngine.recover(tmp_path, durability=False)
        assert isinstance(
            recovered.matcher.storage_backend, SqliteBackend
        )
        assert wm_state(recovered) == wm_state(engine)
        assert cond_state(recovered.matcher) == cond_state(engine.matcher)
        recovered.close()
        engine.close()

    def test_primed_state_equals_recomputed_state(self, tmp_path):
        engine = _workload(tmp_path / "a", SqliteBackend())
        engine.checkpoint()
        primed = RuleEngine.recover(tmp_path / "a", durability=False)
        # Force the rebuild path by recovering onto the memory backend:
        # the member is ignored and COND tables recompute from the WM
        # snapshot.  Instance rows must agree row-for-row (ids too).
        rebuilt = RuleEngine.recover(
            tmp_path / "a", durability=False, backend="memory"
        )
        assert isinstance(rebuilt.matcher.storage_backend, MemoryBackend)
        assert cond_state(primed.matcher) == cond_state(rebuilt.matcher)
        assert wm_state(primed) == wm_state(rebuilt)
        primed.close()
        rebuilt.close()
        engine.close()

    def test_primed_recovery_preserves_refraction(self, tmp_path):
        engine = _workload(tmp_path, SqliteBackend())
        engine.checkpoint()
        recovered = RuleEngine.recover(tmp_path, durability=False)
        # Everything already fired before the checkpoint.
        assert recovered.run() == 0
        recovered.close()
        engine.close()

    def test_primed_recovery_continues_matching(self, tmp_path):
        engine = _workload(tmp_path, SqliteBackend())
        engine.checkpoint()
        engine.close()
        recovered = RuleEngine.recover(tmp_path)
        recovered.make("owner", name="cyd")
        recovered.make("item", owner="cyd", v=9)
        assert recovered.run() == 1
        assert recovered.output == ["tallied cyd"]
        tallies = [
            w for w in recovered.wm
            if w.wme_class == "tally" and w.get("owner") == "cyd"
        ]
        assert [w.get("total") for w in tallies] == [9]
        recovered.close()

    def test_checkpoint_plus_tail_replay(self, tmp_path):
        engine = _workload(tmp_path, SqliteBackend())
        engine.checkpoint()
        engine.make("owner", name="cyd")
        engine.make("item", owner="cyd", v=7)
        engine.run()  # past-checkpoint firing lands in the WAL tail
        recovered = RuleEngine.recover(tmp_path, durability=False)
        assert wm_state(recovered) == wm_state(engine)
        assert cond_state(recovered.matcher) == cond_state(engine.matcher)
        assert recovered.run() == 0
        recovered.close()
        engine.close()

    def test_corrupt_binary_member_detected(self, tmp_path):
        engine = _workload(tmp_path, SqliteBackend())
        engine.checkpoint()
        engine.close()
        _, path = _manifest(tmp_path)
        member = os.path.join(path, DIPS_DB_NAME)
        with open(member, "r+b") as fh:
            fh.seek(100)
            fh.write(b"\xff\xff\xff\xff")
        with pytest.raises(RecoveryError):
            RuleEngine.recover(tmp_path, durability=False)

    def test_program_override_skips_priming(self, tmp_path):
        engine = _workload(tmp_path, SqliteBackend())
        engine.checkpoint()
        engine.close()
        # An explicit program override invalidates the member's
        # template rows; recovery must recompute COND state instead of
        # priming, and still match.
        recovered = RuleEngine.recover(
            tmp_path, durability=False, program=PROGRAM
        )
        reference = RuleEngine.recover(
            tmp_path, durability=False, backend="memory"
        )
        assert cond_state(recovered.matcher) == cond_state(
            reference.matcher
        )
        recovered.close()
        reference.close()
