"""Recovery of reliability state: abort/quarantine/release/reset records.

The WAL gains four record kinds from the reliability subsystem —
``a`` (abort terminator with its containment outcome), ``q``
(quarantine), ``Q`` (release), ``R`` (reset) — and the checkpoint
manifest an optional ``reliability`` section.  These tests pin down
that recovery replays each to the exact live state: refraction stamps
restored for ``halt`` aborts and left consumed otherwise, dead-letter
lists rebuilt, quarantined rules re-parked (and their stamps found
there), and a reset wiping control state mid-log.
"""

import json
import os

import pytest

from repro import DurabilityConfig, RuleEngine
from repro.durability.wal import list_segments, read_log_tail
from repro.errors import EngineError, FiringError

PROGRAM = """
(literalize item n)
(literalize out n)
(p bad (item ^n <n>) (item ^n { <m> > <n> }) --> (call explode))
(p good (item ^n <n>) --> (make out ^n <n>))
"""


def _boom(*args):
    raise ValueError("boom")


def wm_state(engine):
    return sorted(
        (w.time_tag, w.wme_class, tuple(sorted(w.as_dict().items())))
        for w in engine.wm
    )


def cs_state(engine):
    from repro.durability.manager import fired_signature

    return sorted(
        (
            inst.rule.name,
            tuple(map(tuple, fired_signature(inst))),
            inst.eligible(),
        )
        for inst in engine.conflict_set.instantiations()
    )


def record_kinds(path):
    payloads, _, _ = read_log_tail(path, None)
    return [p.get("k") for p in payloads]


def _durable(tmp_path, **kwargs):
    engine = RuleEngine(
        durability=DurabilityConfig(tmp_path, fsync="off"), **kwargs
    )
    engine.load(PROGRAM)
    engine.register_function("explode", _boom)
    return engine


class TestAbortRecords:
    def test_halt_abort_is_logged_and_stamp_restored(self, tmp_path):
        engine = _durable(tmp_path)
        engine.make("item", n=1)
        engine.make("item", n=2)
        with pytest.raises(FiringError):
            engine.run()
        live = (wm_state(engine), cs_state(engine))
        engine.close()
        kinds = record_kinds(tmp_path)
        assert "a" in kinds and kinds.index("f") < kinds.index("a")
        recovered = RuleEngine.recover(tmp_path, durability=False)
        assert (wm_state(recovered), cs_state(recovered)) == live
        # halt restored the stamp: the poison instantiation is still
        # eligible after recovery, exactly as it is live.
        bad = [i for i in recovered.conflict_set.instantiations()
               if i.rule.name == "bad"]
        assert bad and bad[0].eligible()

    def test_skip_abort_replays_dead_letter_and_counts(self, tmp_path):
        engine = _durable(tmp_path, on_error="skip")
        engine.make("item", n=1)
        engine.make("item", n=2)
        engine.run()
        live = (wm_state(engine), cs_state(engine))
        letters = [(d.rule_name, d.attempts, d.outcome, d.error)
                   for d in engine.dead_letters]
        engine.close()
        recovered = RuleEngine.recover(tmp_path, durability=False)
        assert (wm_state(recovered), cs_state(recovered)) == live
        assert [(d.rule_name, d.attempts, d.outcome, d.error)
                for d in recovered.dead_letters] == letters
        assert recovered.reliability.failure_counts.get("bad") == 1

    def test_retry_aborts_then_commit_replay(self, tmp_path):
        engine = _durable(tmp_path, on_error="retry:2")
        calls = {"n": 0}

        def flaky(*args):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ValueError("transient")

        engine.register_function("explode", flaky)
        engine.make("item", n=1)
        engine.make("item", n=2)
        engine.run()
        live = (wm_state(engine), cs_state(engine), engine.cycle_count)
        engine.close()
        kinds = record_kinds(tmp_path)
        # one retry abort, then the successful attempt's f..e bracket
        assert kinds.count("a") == 1
        recovered = RuleEngine.recover(tmp_path, durability=False)
        assert (wm_state(recovered), cs_state(recovered),
                recovered.cycle_count) == live
        assert recovered.dead_letters == []


class TestQuarantineRecords:
    def _run_poisoned(self, tmp_path):
        engine = _durable(tmp_path, on_error="quarantine:2")
        for n in (1, 2, 3):
            engine.make("item", n=n)
        engine.run()
        return engine

    def test_quarantine_replays_to_parked_rule(self, tmp_path):
        engine = self._run_poisoned(tmp_path)
        assert set(engine.quarantined_rules()) == {"bad"}
        parked = len(engine.conflict_set.parked_of_rule("bad"))
        live = (wm_state(engine), cs_state(engine))
        engine.close()
        assert "q" in record_kinds(tmp_path)
        recovered = RuleEngine.recover(tmp_path, durability=False)
        assert set(recovered.quarantined_rules()) == {"bad"}
        assert len(recovered.conflict_set.parked_of_rule("bad")) == parked
        assert (wm_state(recovered), cs_state(recovered)) == live

    def test_release_record_replays(self, tmp_path):
        engine = self._run_poisoned(tmp_path)
        engine.release_rule("bad")
        live_cs = cs_state(engine)
        engine.close()
        assert "Q" in record_kinds(tmp_path)
        recovered = RuleEngine.recover(tmp_path, durability=False)
        assert not recovered.quarantined_rules()
        assert recovered.conflict_set.parked_rules() == []
        assert cs_state(recovered) == live_cs

    def test_checkpoint_carries_reliability_section(self, tmp_path):
        engine = self._run_poisoned(tmp_path)
        path = engine.checkpoint()
        with open(os.path.join(path, "MANIFEST.json"),
                  encoding="utf-8") as handle:
            manifest = json.load(handle)
        section = manifest["reliability"]
        assert "bad" in section["quarantined"]
        assert section["failures"]["bad"] >= 2
        assert len(section["dead_letters"]) == 2
        def parked_state(e):
            from repro.durability.manager import fired_signature

            return sorted(
                (tuple(map(tuple, fired_signature(i))), i.eligible())
                for i in e.conflict_set.parked_of_rule("bad")
            )

        live = (wm_state(engine), cs_state(engine), parked_state(engine))
        # Two pairs were attempted (consumed stamps, dead-lettered);
        # the third was never selected and is still eligible — parked.
        assert [e for _, e in parked_state(engine)].count(False) == 2
        engine.close()
        recovered = RuleEngine.recover(tmp_path, durability=False)
        assert set(recovered.quarantined_rules()) == {"bad"}
        assert len(recovered.dead_letters) == 2
        # Quarantined stamps were re-applied in the parked pool:
        # exactly the live eligibility pattern comes back.
        assert (wm_state(recovered), cs_state(recovered),
                parked_state(recovered)) == live

    def test_clean_checkpoint_has_no_reliability_section(self, tmp_path):
        engine = RuleEngine(
            durability=DurabilityConfig(tmp_path, fsync="off")
        )
        engine.load(PROGRAM)
        engine.make("item", n=1)
        path = engine.checkpoint()
        with open(os.path.join(path, "MANIFEST.json"),
                  encoding="utf-8") as handle:
            manifest = json.load(handle)
        assert "reliability" not in manifest
        engine.close()


class TestResetRecords:
    def test_recover_after_reset(self, tmp_path):
        engine = _durable(tmp_path, on_error="skip")
        engine.make("item", n=1)
        engine.make("item", n=2)
        engine.run()
        assert engine.dead_letters
        engine.reset()
        engine.make("item", n=7)
        engine.run()
        live = (wm_state(engine), cs_state(engine), engine.cycle_count)
        engine.close()
        assert "R" in record_kinds(tmp_path)
        recovered = RuleEngine.recover(tmp_path, durability=False)
        assert (wm_state(recovered), cs_state(recovered),
                recovered.cycle_count) == live
        # The reset wiped the pre-reset dead letters, live and replayed.
        assert recovered.dead_letters == []
        assert recovered.halted is False

    def test_reset_clears_quarantine_in_replay(self, tmp_path):
        engine = _durable(tmp_path, on_error="quarantine:1")
        engine.make("item", n=1)
        engine.make("item", n=2)
        engine.run()
        assert set(engine.quarantined_rules()) == {"bad"}
        engine.reset()
        engine.close()
        recovered = RuleEngine.recover(tmp_path, durability=False)
        assert not recovered.quarantined_rules()
        assert recovered.conflict_set.parked_rules() == []
        assert len(recovered.wm) == 0

    def test_reset_inside_batch_refuses_before_logging(self, tmp_path):
        engine = _durable(tmp_path)
        engine.make("item", n=1)
        with pytest.raises(EngineError):
            with engine.batch():
                engine.reset()
        engine.close()
        assert "R" not in record_kinds(tmp_path)


class TestWalAppendErrorSatellite:
    def test_fire_end_failure_is_counted_not_swallowed(self, tmp_path):
        from repro.engine.stats import MatchStats
        from repro.errors import WalError

        # Fail the WAL append of the fire-end terminator only: the
        # firing's effects are durable, the terminator is not.  The
        # old code swallowed this silently (`except Exception: pass`);
        # now it surfaces as a counter + trace note.
        engine = RuleEngine(
            stats=MatchStats(),
            durability=DurabilityConfig(tmp_path, fsync="off"),
        )
        engine.load("""
(literalize item n)
(literalize out n)
(p good (item ^n <n>) --> (make out ^n <n>))
""")
        wal = engine.durability.wal
        original = wal.append

        def failing(payload, **kwargs):
            if payload.get("k") == "e":
                raise WalError("disk says no")
            return original(payload, **kwargs)

        wal.append = failing
        engine.make("item", n=1)
        fired = engine.run()
        assert fired == 1  # the firing itself committed
        assert engine.stats.counters.get("wal_append_errors", 0) == 1
        noted = [r for r in engine.tracer.firings if r.note]
        assert noted and "append failed" in noted[0].note
        wal.append = original
        engine.close()
        # The bracket is unterminated on disk, so recovery rolls the
        # firing back wholesale to the last durable state: the seed
        # item survives, the firing's effects do not.
        recovered = RuleEngine.recover(tmp_path, durability=False)
        assert recovered.recovery_report.dropped_records >= 1
        assert [w.wme_class for w in recovered.wm] == ["item"]


class TestUsedDirGuardStillHolds:
    def test_fresh_engine_refuses_directory_with_abort_records(
            self, tmp_path):
        engine = _durable(tmp_path, on_error="skip")
        engine.make("item", n=1)
        engine.make("item", n=2)
        engine.run()
        engine.close()
        assert any(
            size for _, path in list_segments(tmp_path)
            for size in [os.path.getsize(path)]
        )
        from repro.errors import DurabilityError

        with pytest.raises(DurabilityError):
            RuleEngine(durability=DurabilityConfig(tmp_path))
