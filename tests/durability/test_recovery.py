"""Recovery: checkpoint restore + WAL replay rebuild identical state."""

import pytest

from repro import DurabilityConfig, RuleEngine
from repro.durability import FaultInjector, SimulatedCrash
from repro.durability.faultfs import corrupt_record, tear_tail
from repro.engine.stats import MatchStats
from repro.errors import DurabilityError, EngineError, RecoveryError

PROGRAM = """
(literalize player name team score)
(p promote
  (player ^name <n> ^team A ^score 10)
  -->
  (modify 1 ^team B)
  (write promoted <n>))
"""


def wm_state(engine):
    return sorted(
        (w.time_tag, w.wme_class, tuple(sorted(w.as_dict().items())))
        for w in engine.wm
    )


def cs_state(engine):
    from repro.durability.manager import fired_signature

    return sorted(
        (
            inst.rule.name,
            inst.is_set_oriented,
            tuple(map(tuple, fired_signature(inst))),
            inst.eligible(),
        )
        for inst in engine.conflict_set.instantiations()
    )


def _workload(wal_dir, fsync="off", **kwargs):
    engine = RuleEngine(
        durability=DurabilityConfig(wal_dir, fsync=fsync), **kwargs
    )
    engine.load(PROGRAM)
    with engine.batch():
        for i in range(6):
            engine.make(
                "player", name=f"p{i}", team="A",
                score=10 if i % 2 == 0 else 1,
            )
    engine.run()
    return engine


class TestBasicRecovery:
    def test_no_checkpoint_full_replay(self, tmp_path):
        engine = _workload(tmp_path)  # crash: never closed
        recovered = RuleEngine.recover(tmp_path)
        assert wm_state(recovered) == wm_state(engine)
        assert cs_state(recovered) == cs_state(engine)
        assert set(recovered.rules) == set(engine.rules)
        assert recovered.recovery_report.checkpoint_path is None

    def test_refraction_survives(self, tmp_path):
        engine = _workload(tmp_path)
        recovered = RuleEngine.recover(tmp_path)
        # Everything already fired; recovery must not re-fire it.
        assert recovered.run() == 0
        assert recovered.output == []
        del engine

    def test_time_tag_counter_survives(self, tmp_path):
        engine = _workload(tmp_path)
        recovered = RuleEngine.recover(tmp_path, durability=False)
        fresh = recovered.make("player", name="new", team="C", score=0)
        assert fresh.time_tag == engine.wm.latest_time_tag + 1

    def test_checkpoint_plus_tail(self, tmp_path):
        engine = _workload(tmp_path)
        engine.checkpoint()
        engine.make("player", name="late", team="A", score=10)
        recovered = RuleEngine.recover(tmp_path)
        assert wm_state(recovered) == wm_state(engine)
        assert cs_state(recovered) == cs_state(engine)
        report = recovered.recovery_report
        assert report.checkpoint_path is not None
        assert report.replayed_deltas == 1
        # The tail firing is still pending on both.
        engine.tracer.output.clear()
        assert engine.run() == recovered.run() == 1
        assert engine.output == recovered.output == ["promoted late"]

    def test_checkpoint_truncates_wal(self, tmp_path):
        from repro.durability.wal import list_segments

        engine = RuleEngine(
            durability=DurabilityConfig(
                tmp_path, fsync="off", segment_bytes=256
            )
        )
        engine.load(PROGRAM)
        for i in range(30):
            engine.make("player", name=f"p{i}", team="C", score=i)
        before = len(list_segments(tmp_path))
        assert before > 1
        engine.checkpoint()
        after = len(list_segments(tmp_path))
        assert after == 1
        recovered = RuleEngine.recover(tmp_path, durability=False)
        assert wm_state(recovered) == wm_state(engine)

    def test_recovered_engine_resumes_logging(self, tmp_path):
        engine = _workload(tmp_path)
        recovered = RuleEngine.recover(tmp_path)
        recovered.make("player", name="after", team="C", score=0)
        recovered.close()
        second = RuleEngine.recover(tmp_path, durability=False)
        assert wm_state(second) == wm_state(recovered)
        del engine

    def test_replayed_deltas_counter(self, tmp_path):
        _workload(tmp_path)
        stats = MatchStats()
        recovered = RuleEngine.recover(
            tmp_path, stats=stats, durability=False
        )
        assert stats.counters["replayed_deltas"] == (
            recovered.recovery_report.replayed_deltas
        )
        assert stats.counters["replayed_deltas"] > 0

    def test_program_override(self, tmp_path):
        _workload(tmp_path)
        override = PROGRAM + """
        (p extra (player ^team B) --> (write b-seen))
        """
        recovered = RuleEngine.recover(
            tmp_path, program=override, durability=False
        )
        assert set(recovered.rules) == {"promote", "extra"}
        assert recovered.run() > 0  # the new rule fires on old WMEs

    def test_excise_is_replayed(self, tmp_path):
        engine = _workload(tmp_path)
        engine.excise("promote")
        recovered = RuleEngine.recover(tmp_path, durability=False)
        assert recovered.rules == {}
        del engine

    def test_strategy_and_matcher_from_checkpoint(self, tmp_path):
        from repro.match import TreatMatcher

        engine = RuleEngine(
            matcher=TreatMatcher(),
            strategy="mea",
            durability=DurabilityConfig(tmp_path, fsync="off"),
        )
        engine.load(PROGRAM)
        engine.make("player", name="a", team="A", score=10)
        engine.checkpoint()
        recovered = RuleEngine.recover(tmp_path, durability=False)
        assert type(recovered.matcher) is TreatMatcher
        assert recovered.strategy.name == "mea"

    def test_dips_checkpoint_needs_no_rdb_snapshot(self, tmp_path):
        import os

        from repro.dips import DipsMatcher

        engine = RuleEngine(
            matcher=DipsMatcher(),
            durability=DurabilityConfig(tmp_path, fsync="off"),
        )
        engine.load(PROGRAM)
        engine.make("player", name="a", team="A", score=10)
        path = engine.checkpoint()
        # The COND tables are derived state rebuilt by replay; the
        # checkpoint holds no second (potentially disagreeing) copy.
        assert not os.path.exists(os.path.join(path, "rdb.json"))
        recovered = RuleEngine.recover(tmp_path, durability=False)
        assert type(recovered.matcher) is DipsMatcher
        assert wm_state(recovered) == wm_state(engine)
        assert cs_state(recovered) == cs_state(engine)


class TestDamageHandling:
    def test_torn_tail_loses_only_unflushed_tail(self, tmp_path):
        engine = _workload(tmp_path)
        before = wm_state(engine)
        engine.make("player", name="torn", team="C", score=0)
        tear_tail(tmp_path, keep=0.4)
        recovered = RuleEngine.recover(tmp_path, durability=False)
        assert recovered.recovery_report.tail_damaged
        assert wm_state(recovered) == before  # only the tail was lost

    def test_corrupt_middle_raises_typed_error(self, tmp_path):
        _workload(tmp_path)
        corrupt_record(tmp_path, index=2)
        with pytest.raises(RecoveryError):
            RuleEngine.recover(tmp_path)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(RecoveryError, match="no write-ahead log"):
            RuleEngine.recover(tmp_path / "nothing")

    def test_fire_record_without_match_is_refused(self, tmp_path):
        from repro.durability.wal import WriteAheadLog

        # A log whose firing record names tags that never existed: the
        # log and the rule base disagree, which recovery must surface.
        wal = WriteAheadLog(tmp_path, fsync="off")
        wal.append({"k": "l", "c": "player",
                    "a": ["name", "team", "score"]})
        wal.append({"k": "p",
                    "src": "(p promote (player ^team A) --> (halt))"})
        wal.append({"k": "d", "n": 2, "e": [
            ["+", "player", 1, {"name": "a", "team": "A", "score": 10}],
        ]})
        wal.append({"k": "f", "r": "promote", "s": 0, "t": [[99]]})
        wal.append({"k": "e"})  # terminated: a *completed* bogus firing
        wal.close()
        with pytest.raises(RecoveryError, match="conflict set"):
            RuleEngine.recover(tmp_path, durability=False)

    def test_unknown_record_kind_is_refused(self, tmp_path):
        from repro.durability.wal import WriteAheadLog

        wal = WriteAheadLog(tmp_path, fsync="off")
        wal.append({"k": "zz"})
        wal.close()
        with pytest.raises(RecoveryError, match="unknown WAL record"):
            RuleEngine.recover(tmp_path, durability=False)


class TestInjectedCrashes:
    @pytest.mark.parametrize("point", [
        "checkpoint.begin",
        "checkpoint.files",
        "checkpoint.rename",
        "checkpoint.current",
        "checkpoint.truncate",
    ])
    def test_crash_during_checkpoint_is_recoverable(self, tmp_path, point):
        fault = FaultInjector(crash_at={point: 1})
        engine = RuleEngine(
            durability=DurabilityConfig(tmp_path, fsync="off", fault=fault)
        )
        engine.load(PROGRAM)
        engine.make("player", name="a", team="A", score=10)
        engine.run()
        expected_wm = wm_state(engine)
        expected_cs = cs_state(engine)
        with pytest.raises(SimulatedCrash):
            engine.checkpoint()
        # Whatever the crash left behind, recovery rebuilds the exact
        # pre-checkpoint state: nothing was lost, nothing doubled.
        recovered = RuleEngine.recover(tmp_path, durability=False)
        assert wm_state(recovered) == expected_wm
        assert cs_state(recovered) == expected_cs

    def test_crash_during_append_loses_only_that_record(self, tmp_path):
        fault = FaultInjector(torn_append=(6, 0.3))
        engine = RuleEngine(
            durability=DurabilityConfig(tmp_path, fsync="off", fault=fault)
        )
        engine.load(PROGRAM)  # records 2-3: literalize + rule (1: meta)
        engine.make("player", name="a", team="C", score=1)  # record 4
        engine.make("player", name="b", team="C", score=2)  # record 5
        before = wm_state(engine)
        with pytest.raises(SimulatedCrash):
            engine.make("player", name="c", team="C", score=3)
        recovered = RuleEngine.recover(tmp_path, durability=False)
        assert recovered.recovery_report.tail_damaged
        assert wm_state(recovered) == before


class TestIncompleteFiring:
    def test_crash_mid_firing_rolls_the_firing_back(self, tmp_path):
        # Appends: 1 meta, 2 literalize, 3 rule, 4 make, 5 'f' stamp,
        # 6 the modify's remove delta — torn.  The log ends with a
        # refraction stamp whose effects never became durable.
        fault = FaultInjector(torn_append=(6, 0.3))
        engine = RuleEngine(
            durability=DurabilityConfig(tmp_path, fsync="off", fault=fault)
        )
        engine.load(PROGRAM)
        engine.make("player", name="a", team="A", score=10)
        with pytest.raises(SimulatedCrash):
            engine.run()
        recovered = RuleEngine.recover(tmp_path, durability=False)
        report = recovered.recovery_report
        assert report.tail_damaged
        assert report.dropped_records == 1  # the orphaned 'f' stamp
        assert report.replayed_firings == 0
        # The firing was rolled back wholesale: the instantiation is
        # eligible again, and refiring converges to the same end state
        # as an uninterrupted run.
        assert recovered.run() == 1
        assert recovered.output == ["promoted a"]
        baseline = _workload(tmp_path / "baseline")
        [(tag, _, values)] = wm_state(recovered)
        assert dict(values)["team"] == "B"
        del baseline

    def test_rollback_truncates_log_for_the_next_recovery(self, tmp_path):
        fault = FaultInjector(torn_append=(6, 0.3))
        engine = RuleEngine(
            durability=DurabilityConfig(tmp_path, fsync="off", fault=fault)
        )
        engine.load(PROGRAM)
        engine.make("player", name="a", team="A", score=10)
        with pytest.raises(SimulatedCrash):
            engine.run()
        # Resume logging: the rolled-back firing must be cut from the
        # file, or a second recovery would see its stamp mid-log.
        first = RuleEngine.recover(tmp_path)
        state = wm_state(first)
        cs = cs_state(first)
        first.close()
        second = RuleEngine.recover(tmp_path, durability=False)
        assert second.recovery_report.dropped_records == 0
        assert wm_state(second) == state
        assert cs_state(second) == cs

    def test_only_the_unterminated_firing_is_dropped(self, tmp_path):
        from repro.durability.wal import WriteAheadLog

        # One completed firing (f…e), then an orphaned stamp with a
        # trailing delta: only the open transaction rolls back.
        wal = WriteAheadLog(tmp_path, fsync="off")
        wal.append({"k": "l", "c": "player",
                    "a": ["name", "team", "score"]})
        wal.append({"k": "p", "src":
                    "(p promote (player ^name <n> ^team A ^score 10) "
                    "--> (modify 1 ^team B) (write promoted <n>))"})
        wal.append({"k": "d", "n": 2, "e": [
            ["+", "player", 1, {"name": "a", "team": "A", "score": 10}],
        ]})
        wal.append({"k": "f", "r": "promote", "s": 0, "t": [[1]]})
        wal.append({"k": "d", "n": 2, "e": [["-", "player", 1, None]]})
        wal.append({"k": "d", "n": 3, "e": [
            ["+", "player", 2, {"name": "a", "team": "B", "score": 10}],
        ]})
        wal.append({"k": "e"})
        wal.append({"k": "d", "n": 4, "e": [
            ["+", "player", 3, {"name": "b", "team": "A", "score": 10}],
        ]})
        wal.append({"k": "f", "r": "promote", "s": 0, "t": [[3]]})
        wal.append({"k": "d", "n": 4, "e": [["-", "player", 3, None]]})
        wal.close()
        recovered = RuleEngine.recover(tmp_path, durability=False)
        report = recovered.recovery_report
        assert report.dropped_records == 2  # the stamp and its delta
        assert report.replayed_firings == 1
        tags = [tag for tag, _, _ in wm_state(recovered)]
        assert tags == [2, 3]  # b's make survived, its removal didn't
        # b is eligible (its firing rolled back); a stays refracted.
        assert recovered.run() == 1
        assert recovered.output == ["promoted b"]


class TestEngineGuards:
    def test_checkpoint_requires_durability(self):
        engine = RuleEngine()
        with pytest.raises(EngineError, match="durability"):
            engine.checkpoint()

    def test_checkpoint_inside_batch_refused(self, tmp_path):
        engine = RuleEngine(
            durability=DurabilityConfig(tmp_path, fsync="off")
        )
        with engine.batch():
            with pytest.raises(DurabilityError, match="batch"):
                engine.checkpoint()
        engine.close()

    def test_fresh_engine_refuses_used_directory(self, tmp_path):
        engine = _workload(tmp_path)
        engine.close()
        # A fresh engine would restart time tags at 1 and interleave
        # two sessions in one log; only recover() may reuse the dir.
        with pytest.raises(DurabilityError, match="previous session"):
            RuleEngine(durability=DurabilityConfig(tmp_path, fsync="off"))
        recovered = RuleEngine.recover(tmp_path)  # the sanctioned path
        recovered.close()

    def test_used_directory_guard_names_labelled_owner(self, tmp_path):
        engine = _workload(tmp_path)
        engine.close()
        # The service layer labels each config with its tenant's
        # session id, so the operator-facing error says whose WAL
        # directory collided, not just which path.
        with pytest.raises(DurabilityError, match="tenant-42"):
            RuleEngine(durability=DurabilityConfig(
                tmp_path, fsync="off", label="tenant-42"
            ))

    def test_unlabelled_guard_has_no_owner_clause(self, tmp_path):
        engine = _workload(tmp_path)
        engine.close()
        with pytest.raises(DurabilityError) as info:
            RuleEngine(durability=DurabilityConfig(tmp_path, fsync="off"))
        assert "(session" not in str(info.value)

    def test_close_is_idempotent(self, tmp_path):
        engine = RuleEngine(
            durability=DurabilityConfig(tmp_path, fsync="off")
        )
        engine.close()
        engine.close()
        assert engine.durability is None
