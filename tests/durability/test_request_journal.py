"""The request-dedup journal at the durability layer: survivable I/O
errors (``error_at``), keys riding inside delta records, ``j`` records,
and the checkpoint manifest carrying the journal across truncation."""

from __future__ import annotations

import errno

import pytest

from repro import DurabilityConfig, RuleEngine
from repro.durability import FaultInjector
from repro.service.session import Session, journal_put

PROGRAM = """
(literalize order id status)
"""


def wm_state(engine):
    return sorted(
        (w.time_tag, w.wme_class, tuple(sorted(w.as_dict().items())))
        for w in engine.wm
    )


class TestErrorInjection:
    def test_error_at_raises_survivable_oserror(self):
        fault = FaultInjector(error_at={"wal.append.before": 2})
        fault.hit("wal.append.before")  # first hit passes
        with pytest.raises(OSError) as info:
            fault.hit("wal.append.before")
        assert info.value.errno == errno.ENOSPC
        assert "injected" in str(info.value)
        assert fault.crashed is False  # survivable, not a crash
        assert fault.errors_injected == 1
        fault.hit("wal.append.before")  # one-shot: third hit passes

    def test_error_at_custom_errno(self):
        fault = FaultInjector(error_at={"wal.fsync": (1, errno.EIO)})
        with pytest.raises(OSError) as info:
            fault.hit("wal.fsync")
        assert info.value.errno == errno.EIO

    def test_enospc_mid_batch_rolls_back_whole(self, tmp_path):
        fault = FaultInjector()
        engine = RuleEngine(durability=DurabilityConfig(
            tmp_path, fsync="off", fault=fault,
        ))
        engine.load(PROGRAM)
        session = Session("tenant", engine)
        first, deduped = session.ingest_facts(
            [("order", {"id": 1, "status": "open"})], key="k1",
        )
        assert not deduped
        # Arm a one-shot ENOSPC on the very next WAL append — the
        # second batch's delta record.
        fault.error_at["wal.append.before"] = (
            fault.counts.get("wal.append.before", 0) + 1, errno.ENOSPC,
        )
        before = wm_state(engine)
        with pytest.raises(OSError):
            session.ingest_facts(
                [("order", {"id": 2, "status": "open"}),
                 ("order", {"id": 3, "status": "open"})],
                key="k2",
            )
        # Nothing half-applied: same WMEs, no staged batch, and the
        # failed request never reached the journal.
        assert wm_state(engine) == before
        assert not engine.wm.in_batch
        assert "k2" not in engine.request_journal
        # The retry applies exactly once, with dense time tags (the
        # rolled-back batch burned none).
        retried, deduped = session.ingest_facts(
            [("order", {"id": 2, "status": "open"}),
             ("order", {"id": 3, "status": "open"})],
            key="k2",
        )
        assert not deduped
        assert retried["ingested"] == 2
        tags = [tag for tag, _, _ in wm_state(engine)]
        assert tags == [1, 2, 3]
        engine.close()
        # And the survivor state is durable: recovery sees all three.
        recovered = RuleEngine.recover(tmp_path, durability=False)
        assert wm_state(recovered) == wm_state(engine)


class TestJournalReplay:
    def test_delta_key_replays_into_the_journal(self, tmp_path):
        engine = RuleEngine(durability=DurabilityConfig(
            tmp_path, fsync="off",
        ))
        engine.load(PROGRAM)
        session = Session("tenant", engine)
        response, _ = session.ingest_facts(
            [("order", {"id": 1, "status": "open"})], key="k1",
        )
        engine.close()
        recovered = RuleEngine.recover(tmp_path, durability=False)
        entry = recovered.request_journal["k1"]
        assert entry["recovered"] is True
        assert entry["ingested"] == response["ingested"] == 1
        assert entry["wm_size"] == response["wm_size"] == 1

    def test_j_record_replays_run_summaries(self, tmp_path):
        engine = RuleEngine(durability=DurabilityConfig(
            tmp_path, fsync="off",
        ))
        engine.load(PROGRAM)
        summary = {"fired": 3, "halted": False, "stopped": "quiescent"}
        engine.durability.log_request("r1", summary)
        engine.close()
        recovered = RuleEngine.recover(tmp_path, durability=False)
        assert recovered.request_journal["r1"] == summary

    def test_checkpoint_manifest_carries_the_journal(self, tmp_path):
        engine = RuleEngine(durability=DurabilityConfig(
            tmp_path, fsync="off",
        ))
        engine.load(PROGRAM)
        session = Session("tenant", engine)
        session.ingest_facts(
            [("order", {"id": 1, "status": "open"})], key="k1",
        )
        # The service layer always pairs the in-memory journal entry
        # with the durable ``j`` record; the manifest snapshots the
        # former.
        journal_put(engine, "r1", {"fired": 0})
        engine.durability.log_request("r1", {"fired": 0})
        engine.checkpoint()  # truncates the WAL records behind it
        session.ingest_facts(
            [("order", {"id": 2, "status": "open"})], key="k2",
        )
        engine.close()
        recovered = RuleEngine.recover(tmp_path, durability=False)
        # k1/r1 came back through the manifest, k2 through the tail.
        assert recovered.request_journal["k1"]["ingested"] == 1
        assert recovered.request_journal["r1"] == {"fired": 0}
        assert recovered.request_journal["k2"]["recovered"] is True

    def test_keyless_traffic_leaves_no_journal(self, tmp_path):
        engine = RuleEngine(durability=DurabilityConfig(
            tmp_path, fsync="off",
        ))
        engine.load(PROGRAM)
        session = Session("tenant", engine)
        session.ingest_facts([("order", {"id": 1, "status": "open"})])
        engine.close()
        recovered = RuleEngine.recover(tmp_path, durability=False)
        assert recovered.request_journal == {}
