"""The service's contract with the embedded engine: a session served
over the wire is *the same computation* — identical firing sequence,
identical derived facts, and a byte-identical write-ahead log — as the
program run in process.  Anything less means the service layer changed
engine semantics, not just transport."""

from __future__ import annotations

import os

import pytest

from repro import RuleEngine
from repro.durability import DurabilityConfig
from repro.durability.wal import list_segments
from repro.service import ServiceClient, ServiceConfig, ServiceThread
from repro.service.protocol import fact_event, firing_event

PROGRAM = """
(literalize dept name)
(literalize emp name dept salary)
(literalize payroll dept total)
(p dept-payroll
  (dept ^name <d>)
  { [emp ^dept <d>] <staff> }
  :test ((count <staff>) >= 1)
  -(payroll ^dept <d>)
  -->
  (make payroll ^dept <d> ^total (sum <staff> ^salary))
  (write payroll <d> (sum <staff> ^salary)))
"""

BATCHES = [
    [("dept", {"name": "d0"}), ("dept", {"name": "d1"})],
    [
        ("emp", {"name": "e0", "dept": "d0", "salary": 100}),
        ("emp", {"name": "e1", "dept": "d1", "salary": 200}),
        ("emp", {"name": "e2", "dept": "d0", "salary": 300}),
    ],
    [("emp", {"name": "e3", "dept": "d1", "salary": 400})],
]


def _wal_bytes(wal_dir):
    """``{segment filename: contents}`` for a WAL directory."""
    return {
        os.path.basename(path): open(path, "rb").read()
        for _, path in list_segments(str(wal_dir))
    }


def _strip_ids(events):
    return [
        {k: v for k, v in event.items() if k != "id"} for event in events
    ]


@pytest.fixture
def embedded(tmp_path):
    """The reference run: same program, same batches, in process."""
    wal_dir = tmp_path / "embedded"
    engine = RuleEngine(
        durability=DurabilityConfig(wal_dir, fsync="batch")
    )
    engine.load(PROGRAM)
    events = []
    fired_total = 0
    for batch in BATCHES:
        engine.load_facts(batch)
        derived = []
        engine.wm.attach(derived.append)
        fired_total += engine.run()
        engine.wm.detach(derived.append)
        for record in engine.tracer.firings:
            events.append(firing_event(None, record))
        for text in engine.tracer.output:
            events.append({"event": "write", "id": None, "text": text})
        engine.tracer.firings.clear()
        engine.tracer.output.clear()
        for event in derived:
            events.append(fact_event(None, event.sign, event.wme))
    wm_state = sorted(
        (w.wme_class, w.time_tag, tuple(sorted(w.as_dict().items())))
        for w in engine.wm
    )
    engine.close()
    return {
        "wal_dir": wal_dir,
        "events": _strip_ids(events),
        "fired": fired_total,
        "wm": wm_state,
    }


def test_wire_session_is_byte_identical_to_embedded(tmp_path, embedded):
    wal_root = tmp_path / "service"
    config = ServiceConfig(port=0, wal_root=str(wal_root))
    with ServiceThread(config) as server:
        with ServiceClient(*server.address) as client:
            client.create("diff", PROGRAM)
            wire_events = []
            wire_fired = 0
            for batch in BATCHES:
                client.assert_facts("diff", batch)
                response, events = client.run("diff")
                wire_fired += response["fired"]
                wire_events.extend(events)
            _, fact_lines = client.facts("diff")
            client.close_session("diff")

    # Same firings, same writes, same derived facts, in order.
    assert _strip_ids(wire_events) == embedded["events"]
    assert wire_fired == embedded["fired"]

    # Same final working memory (classes, time tags, and values).
    wire_wm = sorted(
        (e["class"], e["tag"], tuple(sorted(e["values"].items())))
        for e in fact_lines
    )
    assert wire_wm == embedded["wm"]

    # And the write-ahead logs agree byte for byte: the service added
    # transport, not semantics — a recovery of either directory yields
    # the same session.
    wire_wal = _wal_bytes(wal_root / "diff")
    embedded_wal = _wal_bytes(embedded["wal_dir"])
    assert sorted(wire_wal) == sorted(embedded_wal)
    for name in embedded_wal:
        assert wire_wal[name] == embedded_wal[name], (
            f"segment {name} diverged between wire and embedded runs"
        )


def test_recovered_wire_session_matches_embedded(tmp_path, embedded):
    """Recovering the service-written WAL in process reproduces the
    embedded engine's working memory exactly."""
    wal_root = tmp_path / "service"
    with ServiceThread(
        ServiceConfig(port=0, wal_root=str(wal_root))
    ) as server:
        with ServiceClient(*server.address) as client:
            client.create("diff", PROGRAM)
            for batch in BATCHES:
                client.assert_facts("diff", batch)
                client.run("diff")
            client.close_session("diff")

    engine = RuleEngine.recover(str(wal_root / "diff"), durability=False)
    assert sorted(
        (w.wme_class, w.time_tag, tuple(sorted(w.as_dict().items())))
        for w in engine.wm
    ) == embedded["wm"]
    assert engine.run() == 0  # refraction carried over the wire
    engine.close()
