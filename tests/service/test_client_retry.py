"""Client-side resilience: transparent reconnects, ambiguous-failure
classification, retry budgets, and socket hygiene."""

from __future__ import annotations

import socket

import pytest

from repro.service import (
    AmbiguousRequestError,
    ServiceBusyError,
    ServiceClient,
    ServiceConfig,
    ServiceThread,
)

PROGRAM = """
(literalize order id status)
(literalize shipped id)
(p ship-open
  (order ^id <i> ^status open)
  -(shipped ^id <i>)
  -->
  (make shipped ^id <i>))
"""


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    wal_root = tmp_path_factory.mktemp("client-retry-wal")
    with ServiceThread(ServiceConfig(
        port=0, wal_root=str(wal_root), engine_workers=2,
    )) as thread:
        yield thread


@pytest.fixture
def client(server):
    with ServiceClient(*server.address) as connection:
        yield connection


def _unique(request):
    return request.node.name.replace("[", "-").replace("]", "")


def _flaky_once(client, *, mark_sent, error=None):
    """Make the client's next request attempt die with a connection
    error; *mark_sent* controls whether the request counts as fully
    sent (the ambiguous window) or torn off mid-send (safe to resend).
    """
    original = client._request_once
    state = {"failed": False}

    def flaky(op, *, sent_flag=None, **kwargs):
        if not state["failed"]:
            state["failed"] = True
            if mark_sent and sent_flag is not None:
                sent_flag.append(True)
            raise error or ConnectionError("injected connection loss")
        return original(op, sent_flag=sent_flag, **kwargs)

    client._request_once = flaky
    return state


class TestServerRestart:
    def test_reconnects_transparently_and_resumes(self, tmp_path):
        wal_root = str(tmp_path / "wal")
        first = ServiceThread(ServiceConfig(
            port=0, wal_root=wal_root, engine_workers=2,
        )).start()
        host, port = first.address
        client = ServiceClient(host, port, timeout=5)
        try:
            client.create("phoenix", PROGRAM, durable=True)
            client.assert_facts(
                "phoenix", [("order", {"id": 1, "status": "open"})],
            )
            first.stop()
            # Same port, new server generation (SO_REUSEADDR).
            second = ServiceThread(ServiceConfig(
                host=host, port=port, wal_root=wal_root,
                engine_workers=2,
            )).start()
            try:
                # Non-mutating op rides the dead socket, reconnects,
                # and resends without caller involvement.
                assert client.ping()["pong"] is True
                assert client.reconnects >= 1
                created = client.create(
                    "phoenix", "", resume=True, retry=True,
                    idempotent=True,
                )
                assert created["resumed"] is True
                assert created["wm_size"] == 1
            finally:
                second.stop()
        finally:
            client.close()

    def test_no_reconnect_when_disabled(self, server):
        client = ServiceClient(*server.address, auto_reconnect=False)
        try:
            _flaky_once(client, mark_sent=False)
            with pytest.raises((ConnectionError, OSError)):
                client.ping()
        finally:
            client.close()


class TestAmbiguity:
    def test_sent_mutating_request_without_key_is_ambiguous(
        self, client, request
    ):
        sid = _unique(request)
        client.create(sid, PROGRAM, durable=False)
        _flaky_once(client, mark_sent=True)
        with pytest.raises(AmbiguousRequestError) as info:
            client.assert_facts(
                sid, [("order", {"id": 1, "status": "open"})],
            )
        assert info.value.op == "assert"
        assert info.value.code == "ambiguous"
        assert "idempotency key" in str(info.value)
        client.close_session(sid)

    def test_key_makes_the_ambiguous_case_safe(self, client, request):
        sid = _unique(request)
        client.create(sid, PROGRAM, durable=False)
        _flaky_once(client, mark_sent=True)
        response = client.assert_facts(
            sid, [("order", {"id": 1, "status": "open"})],
            idempotent=True,
        )
        assert response["ingested"] == 1
        assert client.retries >= 1
        client.close_session(sid)

    def test_unsent_mutating_request_resends_without_key(
        self, client, request
    ):
        sid = _unique(request)
        client.create(sid, PROGRAM, durable=False)
        # The send itself failed: the trailing newline never reached
        # the server, so the server cannot have processed it.
        _flaky_once(client, mark_sent=False)
        response = client.assert_facts(
            sid, [("order", {"id": 1, "status": "open"})],
        )
        assert response["ingested"] == 1
        respond, _ = client.facts(sid, "order")
        assert respond["count"] == 1
        client.close_session(sid)

    def test_non_mutating_op_always_resends(self, client):
        _flaky_once(client, mark_sent=True,
                    error=socket.timeout("injected timeout"))
        assert client.ping()["pong"] is True


class TestBudgets:
    def test_busy_retry_budget_exhausts(self, client):
        calls = {"n": 0}

        def always_busy(op, *, sent_flag=None, **kwargs):
            calls["n"] += 1
            raise ServiceBusyError({
                "ok": False, "error": "busy", "message": "full",
                "retry_after": 0.001,
            })

        client._request_once = always_busy
        with pytest.raises(ServiceBusyError):
            client.request("ping", retry=True, max_retries=3)
        assert calls["n"] == 4  # initial attempt + three retries
        assert client.busy_retries == 3

    def test_time_budget_bounds_retries(self, server):
        client = ServiceClient(
            *server.address, retry_budget_s=0.05, backoff_base=0.02,
        )
        try:
            def always_lost(op, *, sent_flag=None, **kwargs):
                raise ConnectionError("injected")

            client._request_once = always_lost
            with pytest.raises(ConnectionError):
                client.request("ping", retry=True)
            # Far fewer than max_retries: the clock ran out first.
            assert client.retries < client.max_retries
        finally:
            client.close()


class TestSocketHygiene:
    def test_busy_responses_keep_the_connection(self, tmp_path):
        # A zero-length global queue sheds everything except control
        # ops; shed responses must not cost the client its socket.
        with ServiceThread(ServiceConfig(
            port=0, global_queue=0,
        )) as thread:
            with ServiceClient(*thread.address) as client:
                sock_before = client._sock
                with pytest.raises(ServiceBusyError) as info:
                    client.create("nope", PROGRAM, durable=False)
                assert info.value.retry_after > 0
                assert client._sock is sock_before
                assert client.ping()["pong"] is True
                assert client.reconnects == 0

    def test_close_is_idempotent_and_releases_the_socket(self, server):
        client = ServiceClient(*server.address)
        assert client._sock is not None
        client.close()
        assert client._sock is None
        assert client._reader is None
        client.close()  # second close is a no-op

    def test_failed_connect_leaves_no_socket(self):
        with pytest.raises(OSError):
            ServiceClient("127.0.0.1", 1, timeout=0.2)
