"""Session lifecycle: validation, eviction, resume, tenant isolation."""

from __future__ import annotations

import pytest

from repro.errors import AdmissionError, DurabilityError, ServiceError
from repro.service.rulebase import RuleBaseCache
from repro.service.session import SessionRegistry, validate_session_id

PROGRAM = """
(literalize item name qty)
(literalize total n)
(p count-items
  { [item] <all> }
  :test ((count <all>) >= 1)
  -(total)
  -->
  (make total ^n (count <all>)))
"""


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def registry(tmp_path, clock):
    return SessionRegistry(
        RuleBaseCache(),
        wal_root=tmp_path / "wal",
        max_sessions=3,
        idle_ttl=60.0,
        clock=clock,
    )


class TestSessionIds:
    @pytest.mark.parametrize("good", ["a", "tenant-1", "A.b_c-9", "9x"])
    def test_accepts(self, good):
        assert validate_session_id(good) == good

    @pytest.mark.parametrize("bad", [
        "", ".hidden", "-lead", "a/b", "../escape", "a" * 65,
        "sp ace", None, 7,
    ])
    def test_rejects(self, bad):
        with pytest.raises(ServiceError):
            validate_session_id(bad)


class TestRegistry:
    def test_create_get_close(self, registry):
        session, hit = registry.create("t1", PROGRAM)
        assert hit is False
        assert registry.get("t1") is session
        assert "t1" in registry
        registry.close_session("t1")
        assert "t1" not in registry
        with pytest.raises(ServiceError):
            registry.get("t1")

    def test_duplicate_id_rejected(self, registry):
        registry.create("t1", PROGRAM)
        with pytest.raises(ServiceError, match="already exists"):
            registry.create("t1", PROGRAM)

    def test_second_session_hits_rule_base(self, registry):
        _, first = registry.create("t1", PROGRAM)
        _, second = registry.create("t2", PROGRAM)
        assert first is False
        assert second is True

    def test_tenant_state_is_isolated(self, registry):
        one, _ = registry.create("t1", PROGRAM)
        two, _ = registry.create("t2", PROGRAM)
        one.engine.load_facts([("item", {"name": "a", "qty": 1})])
        one.engine.run()
        assert len(one.engine.wm) == 2  # item + total
        assert len(two.engine.wm) == 0

    def test_close_is_idempotent(self, registry):
        session, _ = registry.create("t1", PROGRAM)
        registry.close_session("t1")
        # Eviction racing a client disconnect: both paths close().
        session.close()
        session.close(checkpoint=True)


class TestLruEviction:
    def test_lru_idle_session_evicted_at_capacity(self, registry, clock):
        for i in range(3):
            registry.create(f"t{i}", PROGRAM)
            clock.advance(1.0)
        registry.get("t0")  # t1 becomes least recently used
        clock.advance(1.0)
        registry.create("t3", PROGRAM)
        assert "t1" not in registry
        assert all(t in registry for t in ("t0", "t2", "t3"))
        assert registry.evicted_lru == 1

    def test_all_busy_rejects_with_backpressure(self, registry):
        for i in range(3):
            session, _ = registry.create(f"t{i}", PROGRAM)
            session.pending = 1
        with pytest.raises(AdmissionError) as info:
            registry.create("t9", PROGRAM)
        assert info.value.retry_after > 0

    def test_evicted_session_is_checkpointed(self, registry, clock):
        session, _ = registry.create("t0", PROGRAM)
        session.engine.load_facts([("item", {"name": "a", "qty": 1})])
        for i in range(1, 4):
            clock.advance(1.0)
            registry.create(f"t{i}", PROGRAM)
        assert "t0" not in registry
        from repro.durability.checkpoint import list_checkpoints

        assert list_checkpoints(str(session.wal_dir))


class TestIdleSweep:
    def test_sweeps_only_expired_idle_sessions(self, registry, clock):
        registry.create("old", PROGRAM)
        clock.advance(59.0)
        registry.create("young", PROGRAM)
        clock.advance(1.0)
        evicted = registry.sweep_idle()
        assert evicted == ["old"]
        assert "old" not in registry
        assert "young" in registry
        assert registry.evicted_idle == 1

    def test_busy_sessions_never_swept(self, registry, clock):
        session, _ = registry.create("busy", PROGRAM)
        session.pending = 1
        clock.advance(600.0)
        assert registry.sweep_idle() == []
        assert "busy" in registry


class TestResume:
    def test_evicted_session_resumes_from_wal(self, registry, clock):
        session, _ = registry.create("t1", PROGRAM)
        session.engine.load_facts([
            ("item", {"name": "a", "qty": 1}),
            ("item", {"name": "b", "qty": 2}),
        ])
        session.engine.run()
        fingerprint = sorted(
            (w.wme_class, w.time_tag) for w in session.engine.wm
        )
        clock.advance(120.0)
        assert registry.sweep_idle() == ["t1"]

        resumed, hit = registry.create("t1", "", resume=True)
        assert resumed.resumed is True
        assert hit is False
        assert sorted(
            (w.wme_class, w.time_tag) for w in resumed.engine.wm
        ) == fingerprint
        # Refraction survived: the counted total must not re-fire.
        assert resumed.engine.run() == 0

    def test_resume_requires_durability(self, tmp_path):
        registry = SessionRegistry(RuleBaseCache(), wal_root=None)
        with pytest.raises(ServiceError, match="resume"):
            registry.create("t1", "", resume=True)

    def test_fresh_create_on_used_dir_names_session(self, registry):
        session, _ = registry.create("tenant-7", PROGRAM)
        session.engine.load_facts([("item", {"name": "a", "qty": 1})])
        registry.close_session("tenant-7")
        # The guard must say *whose* WAL directory collided so a
        # service operator can map the failure to a tenant.
        with pytest.raises(DurabilityError, match="tenant-7"):
            registry.create("tenant-7", PROGRAM)


class TestCloseAll:
    def test_close_all_empties_registry(self, registry):
        for i in range(3):
            registry.create(f"t{i}", PROGRAM)
        registry.close_all()
        assert len(registry) == 0
        assert registry.stats()["closed"] == 3
