"""Graceful degradation: health, deadlines, circuit breakers, tiered
shedding, and drain-mode shutdown, driven over a live socket."""

from __future__ import annotations

import time

import pytest

from repro.errors import AdmissionError
from repro.service import (
    RuleService,
    ServiceBusyError,
    ServiceClient,
    ServiceClientError,
    ServiceConfig,
    ServiceThread,
)

PROGRAM = """
(literalize order id status)
(literalize shipped id)
(p ship-open
  (order ^id <i> ^status open)
  -(shipped ^id <i>)
  -->
  (make shipped ^id <i>))
"""

#: Monotonic counter: fires until the deadline watchdog stops it.
COUNTER_PROGRAM = """
(literalize tick n)
(p advance (tick ^n { <n> < 1000000 }) --> (modify 1 ^n (<n> + 1)))
"""


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    wal_root = tmp_path_factory.mktemp("resilience-wal")
    with ServiceThread(ServiceConfig(
        port=0, wal_root=str(wal_root), engine_workers=2,
        breaker_threshold=3, breaker_cooldown=0.4,
    )) as thread:
        yield thread


@pytest.fixture
def client(server):
    with ServiceClient(*server.address) as connection:
        yield connection


def _unique(request):
    return request.node.name.replace("[", "-").replace("]", "")


class TestHealth:
    def test_health_reports_ready(self, client):
        health = client.health()
        assert health["healthy"] is True
        assert health["ready"] is True
        assert health["draining"] is False
        assert health["protocol"] == 1
        assert isinstance(health["sessions"], int)
        assert isinstance(health["open_breakers"], int)


class TestDeadlines:
    def test_expired_deadline_rejects_before_applying(
        self, client, request
    ):
        sid = _unique(request)
        client.create(sid, PROGRAM, durable=False)
        client.assert_facts(sid, [("order", {"id": 1, "status": "open"})])
        with pytest.raises(ServiceClientError) as info:
            client.assert_facts(
                sid, [("order", {"id": 2, "status": "open"})],
                deadline_ms=0,
            )
        assert info.value.code == "deadline"
        # Never applied: retrying with a fresh deadline is safe.
        assert info.value.retry_after == 0.0
        response, _ = client.facts(sid, "order")
        assert response["count"] == 1
        client.close_session(sid)

    def test_generous_deadline_serves_normally(self, client, request):
        sid = _unique(request)
        client.create(sid, PROGRAM, durable=False)
        response = client.assert_facts(
            sid, [("order", {"id": 1, "status": "open"})],
            deadline_ms=30_000,
        )
        assert response["ingested"] == 1
        client.close_session(sid)

    def test_deadline_stops_a_running_run(self, client, request):
        sid = _unique(request)
        client.create(sid, COUNTER_PROGRAM, durable=False)
        client.assert_facts(sid, [("tick", {"n": 0})])
        response, _ = client.run(sid, deadline_ms=50)
        # An in-flight deadline is not an error: the watchdog stops
        # the run and the partial progress is real and committed.
        assert response["stopped"] == "deadline"
        assert 0 < response["fired"] < 1_000_000
        client.close_session(sid)

    def test_malformed_deadline_is_bad_request(self, client, request):
        sid = _unique(request)
        with pytest.raises(ServiceClientError) as info:
            client.request(
                "assert", session=sid, facts=[], deadline_ms="soon",
            )
        assert info.value.code == "bad_request"


class TestCircuitBreaker:
    def test_breaker_trips_quarantines_and_recovers(
        self, client, request
    ):
        sid = _unique(request)
        client.create(sid, PROGRAM, durable=False)
        # Three consecutive engine failures trip the breaker.
        for _ in range(3):
            with pytest.raises(ServiceClientError) as info:
                client.assert_facts(sid, [("order", {"bogus": 1})])
            assert info.value.code == "engine"
        # Open: even a valid request is shed with the remaining
        # cooldown as the retry hint.
        with pytest.raises(ServiceBusyError) as busy:
            client.assert_facts(
                sid, [("order", {"id": 1, "status": "open"})]
            )
        assert "circuit" in str(busy.value)
        assert 0 < busy.value.retry_after <= 0.4
        assert client.health()["open_breakers"] >= 1
        stats = client.stats()
        assert stats["breakers"]["tracked"] >= 1
        assert stats["server"]["breaker_trips"] >= 1
        # After the cooldown, the half-open probe is admitted and its
        # success closes the breaker.
        time.sleep(0.45)
        response = client.assert_facts(
            sid, [("order", {"id": 1, "status": "open"})]
        )
        assert response["ingested"] == 1
        response = client.assert_facts(
            sid, [("order", {"id": 2, "status": "open"})]
        )
        assert response["wm_size"] == 2
        client.close_session(sid)

    def test_failed_probe_reopens_the_breaker(self, client, request):
        sid = _unique(request)
        client.create(sid, PROGRAM, durable=False)
        for _ in range(3):
            with pytest.raises(ServiceClientError):
                client.assert_facts(sid, [("order", {"bogus": 1})])
        time.sleep(0.45)
        # The probe fails too: quarantined again without three more
        # failures.
        with pytest.raises(ServiceClientError) as info:
            client.assert_facts(sid, [("order", {"bogus": 1})])
        assert info.value.code == "engine"
        with pytest.raises(ServiceBusyError):
            client.assert_facts(
                sid, [("order", {"id": 1, "status": "open"})]
            )
        client.close_session(sid)

    def test_close_clears_the_breaker(self, client, request):
        sid = _unique(request)
        client.create(sid, PROGRAM, durable=False)
        for _ in range(3):
            with pytest.raises(ServiceClientError):
                client.assert_facts(sid, [("order", {"bogus": 1})])
        client.close_session(sid)
        # A fresh session under the same id starts with a clean slate.
        client.create(sid, PROGRAM, durable=False)
        response = client.assert_facts(
            sid, [("order", {"id": 1, "status": "open"})]
        )
        assert response["ingested"] == 1
        client.close_session(sid)


class TestTieredShedding:
    def _service(self, **kwargs):
        return RuleService(ServiceConfig(**kwargs))

    def test_create_sheds_before_work(self):
        service = self._service(global_queue=10)
        try:
            service.global_pending = 8
            with pytest.raises(AdmissionError):
                service._admit_global(tier="create")
            service._admit_global(tier="work")  # still admitted
        finally:
            service._executor.shutdown(wait=False)

    def test_retry_after_scales_with_overload(self):
        service = self._service(global_queue=10)
        try:
            service.global_pending = 20
            with pytest.raises(AdmissionError) as info:
                service._admit_global(tier="work")
            overloaded = info.value.retry_after
            service.global_pending = 10
            with pytest.raises(AdmissionError) as info:
                service._admit_global(tier="work")
            assert overloaded > info.value.retry_after >= 0.05
        finally:
            service._executor.shutdown(wait=False)

    def test_tiny_queues_keep_one_create_slot_semantics(self):
        # With global_queue < 5 the create tier collapses onto the
        # global cap (the 80% split would otherwise admit nothing or
        # everything in odd ways).
        service = self._service(global_queue=2)
        try:
            service.global_pending = 1
            service._admit_global(tier="create")
            service.global_pending = 2
            with pytest.raises(AdmissionError):
                service._admit_global(tier="create")
        finally:
            service._executor.shutdown(wait=False)


class TestDrain:
    def test_drain_checkpoints_and_next_generation_resumes(
        self, tmp_path
    ):
        wal_root = tmp_path / "wal"
        config = dict(
            port=0, wal_root=str(wal_root), engine_workers=2,
        )
        with ServiceThread(ServiceConfig(**config)) as thread:
            with ServiceClient(*thread.address) as client:
                client.create("drained", PROGRAM, durable=True)
                client.assert_facts(
                    "drained", [("order", {"id": 1, "status": "open"})]
                )
                client.run("drained")
                address = thread.address
                thread.begin_drain()
                # Control ops keep working on the open connection...
                health = client.health()
                assert health["draining"] is True
                assert health["ready"] is False
                assert client.stats()["draining"] is True
                # ...work is rejected with a busy that names the drain...
                with pytest.raises(ServiceBusyError) as busy:
                    client.assert_facts(
                        "drained",
                        [("order", {"id": 2, "status": "open"})],
                    )
                assert busy.value.response.get("draining") is True
                # ...and new connections are refused outright.
                with pytest.raises(OSError):
                    ServiceClient(*address, timeout=2)
                thread.drain(grace=5)
            # Drain checkpointed the session on its way out.
            session_dir = wal_root / "drained"
            assert (session_dir / "CURRENT").exists()
        with ServiceThread(ServiceConfig(**config)) as thread:
            with ServiceClient(*thread.address) as client:
                created = client.create("drained", "", resume=True)
                assert created["resumed"] is True
                assert created["wm_size"] == 2  # order + shipped
                # Refraction survived: nothing re-fires.
                response, _ = client.run("drained")
                assert response["fired"] == 0

    def test_begin_drain_is_idempotent(self, tmp_path):
        with ServiceThread(ServiceConfig(
            port=0, wal_root=str(tmp_path / "wal"),
        )) as thread:
            thread.begin_drain()
            thread.begin_drain()
            thread.drain(grace=1)
            thread.drain(grace=1)
