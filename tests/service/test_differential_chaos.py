"""The tentpole acceptance test: a chaos-injected service converges.

The same deterministic keyed workload runs twice — once against a
quiet server, once against a server injecting wire teardowns, torn
writes, delays, and session kills — and must land in *identical* final
state: same working memory including time tags, same committed-firing
signature sequence in the WAL, zero duplicate firings.  That is the
exactly-once contract end to end: idempotency keys + WAL-backed
request journal + transactional ingest + resume-on-kill.
"""

from __future__ import annotations

from repro.durability.wal import read_log_tail
from repro.service import (
    ServiceClient,
    ServiceClientError,
    ServiceConfig,
    ServiceThread,
)

PROGRAM = """
(literalize dept name)
(literalize emp name dept salary)
(literalize seen name)
(p note-emp
  (emp ^name <n> ^salary {<s> > 1500})
  -(seen ^name <n>)
  -->
  (make seen ^name <n>))
(p dept-size
  (dept ^name <d>)
  { [emp ^dept <d>] <staff> }
  :test ((count <staff>) >= 1)
  -->
  (write staffed <d> (count <staff>)))
"""

TICKS = 8
FACTS_PER_TICK = 4
N_DEPTS = 3

#: Per-line chaos rates: roughly every fourth response is torn down,
#: plus a ~6% chance each session op's target is killed outright.
CHAOS = ("disconnect=0.04,partial=0.03,delay=0.08,delay_s=0.002,"
         "kill=0.06,seed=17")


def _facts_for_tick(tick):
    base = tick * FACTS_PER_TICK
    return [
        ("emp", {
            "name": f"e{base + i}",
            "dept": f"d{(base + i) % N_DEPTS}",
            "salary": 1000 + ((base + i) % 2000),
        })
        for i in range(FACTS_PER_TICK)
    ]


def _drive(address, sid, *, seed):
    """The deterministic keyed workload; returns (facts, fired_total).

    Every mutating request carries a deterministic idempotency key, so
    a retry after any injected fault applies exactly once; a killed
    session is resumed from its WAL and the op retried under the same
    key.
    """
    with ServiceClient(
        *address, seed=seed, max_retries=300, retry_budget_s=120.0,
        backoff_base=0.005,
    ) as client:
        def call(fn):
            for _attempt in range(10):
                try:
                    return fn()
                except ServiceClientError as error:
                    if error.code != "no_session":
                        raise
                    client.create(
                        sid, "", resume=True, retry=True,
                        idempotent=True,
                    )
            raise AssertionError("session never recovered")

        client.create(
            sid, PROGRAM, durable=True, retry=True,
            key=f"{sid}-create",
        )
        call(lambda: client.assert_facts(
            sid, [("dept", {"name": f"d{d}"}) for d in range(N_DEPTS)],
            retry=True, key=f"{sid}-depts",
        ))
        fired_total = 0
        for tick in range(TICKS):
            call(lambda: client.assert_facts(
                sid, _facts_for_tick(tick), retry=True,
                key=f"{sid}-a{tick}",
            ))
            response, _events = call(lambda: client.run(
                sid, retry=True, key=f"{sid}-r{tick}",
            ))
            assert response["halted"] is False
            fired_total += response["fired"]
        _, events = call(lambda: client.facts(sid, retry=True))
        facts = sorted(
            (e["class"], e["tag"], tuple(sorted(e["values"].items())))
            for e in events
        )
        stats = client.stats()
        return facts, fired_total, stats


def _committed_firings(wal_dir):
    """The committed-firing signature sequence of one session's WAL.

    ``f`` opens a firing bracket, ``e`` commits it, ``a`` rolls it
    back — exactly the semantics recovery replays.  Only committed
    brackets count; signatures are (rule, time-tag tuples), which pin
    the precise WME combination that fired.
    """
    payloads, _end, damage = read_log_tail(str(wal_dir))
    assert damage is None
    committed = []
    pending = None
    for record in payloads:
        kind = record.get("k")
        if kind == "f":
            assert pending is None, "firing brackets never nest"
            pending = (record["r"], tuple(map(tuple, record["t"])))
        elif kind == "e":
            assert pending is not None
            committed.append(pending)
            pending = None
        elif kind == "a":
            pending = None
    assert pending is None, "WAL ends inside a firing bracket"
    return committed


def test_chaos_run_converges_to_the_fault_free_state(tmp_path):
    quiet_root = tmp_path / "quiet"
    chaos_root = tmp_path / "chaos"
    # The sweeper stays off so neither WAL is checkpoint-truncated and
    # the full firing history remains comparable.
    with ServiceThread(ServiceConfig(
        port=0, wal_root=str(quiet_root), engine_workers=2,
        sweep_interval=0.0,
    )) as quiet:
        quiet_facts, quiet_fired, _ = _drive(
            quiet.address, "tenant", seed=1,
        )
    with ServiceThread(ServiceConfig(
        port=0, wal_root=str(chaos_root), engine_workers=2,
        sweep_interval=0.0, chaos=CHAOS,
    )) as chaotic:
        chaos_facts, chaos_fired, stats = _drive(
            chaotic.address, "tenant", seed=1,
        )

    # The chaos layer actually did something.
    injected = stats["chaos"]["injected"]
    assert sum(injected.values()) > 0

    # Identical final working memory, including time tags: no lost
    # batch, no double-applied batch, no tag burned by a retry.
    assert chaos_facts == quiet_facts
    assert chaos_fired == quiet_fired

    # Identical committed-firing sequences, and no duplicates: every
    # logical firing happened exactly once on both sides.
    quiet_firings = _committed_firings(quiet_root / "tenant")
    chaos_firings = _committed_firings(chaos_root / "tenant")
    assert chaos_firings == quiet_firings
    assert len(set(chaos_firings)) == len(chaos_firings)
    assert len(quiet_firings) == quiet_fired
