"""Wire-protocol framing: NDJSON encode/decode and event shapes."""

from __future__ import annotations

import json

import pytest

from repro.service.protocol import (
    ERROR_CODES,
    decode_line,
    encode_line,
    error_response,
    event_line,
    fact_event,
    firing_event,
    ok_response,
)


class TestFraming:
    def test_encode_is_one_line(self):
        data = encode_line({"op": "ping", "id": 1})
        assert data.endswith(b"\n")
        assert data.count(b"\n") == 1

    def test_round_trip(self):
        obj = {"op": "assert", "id": 7,
               "facts": [["emp", {"name": "sue", "salary": 1200}]]}
        assert decode_line(encode_line(obj)) == obj

    def test_compact_encoding(self):
        assert b" " not in encode_line({"a": [1, 2], "b": {"c": 3}})

    def test_unicode_survives(self):
        obj = {"op": "assert", "name": "dépt"}
        assert decode_line(encode_line(obj)) == obj

    def test_decode_accepts_str(self):
        assert decode_line('{"op":"ping"}') == {"op": "ping"}

    def test_decode_rejects_non_object(self):
        with pytest.raises(ValueError):
            decode_line(b"[1,2,3]\n")

    def test_decode_rejects_garbage(self):
        with pytest.raises(ValueError):
            decode_line(b"not json at all\n")


class TestResponses:
    def test_ok_echoes_id(self):
        response = ok_response(42, fired=3)
        assert response == {"ok": True, "id": 42, "fired": 3}

    def test_error_carries_code_and_message(self):
        response = error_response(1, "busy", "full", retry_after=0.05)
        assert response["ok"] is False
        assert response["error"] == "busy"
        assert response["retry_after"] == 0.05
        assert response["error"] in ERROR_CODES

    def test_event_line_shape(self):
        line = event_line(9, "write", text="hello")
        assert line == {"event": "write", "id": 9, "text": "hello"}


class _Record:
    rule_name = "dept-size"
    cycle = 3
    is_set_oriented = True
    time_tags = (4, 2, 7)
    outcome = "fired"


class _Wme:
    wme_class = "seen"
    time_tag = 11

    @staticmethod
    def as_dict():
        return {"name": "sue"}


class TestEventPayloads:
    def test_firing_event(self):
        line = firing_event(5, _Record())
        assert line["event"] == "firing"
        assert line["rule"] == "dept-size"
        assert line["soi"] is True
        assert line["tags"] == [4, 2, 7]
        # The payload must be JSON-serialisable as produced.
        json.dumps(line)

    def test_fact_event(self):
        line = fact_event(5, "+", _Wme())
        assert line["class"] == "seen"
        assert line["sign"] == "+"
        assert line["tag"] == 11
        assert line["values"] == {"name": "sue"}
        json.dumps(line)
