"""The service front end over a live socket: ops, errors, backpressure,
session lifecycle driven end to end through :class:`ServiceClient`."""

from __future__ import annotations

import time

import pytest

from repro.service import (
    ServiceBusyError,
    ServiceClient,
    ServiceClientError,
    ServiceConfig,
    ServiceThread,
)
from repro.service.protocol import encode_line

PROGRAM = """
(literalize order id status)
(literalize shipped id)
(p ship-open
  (order ^id <i> ^status open)
  -(shipped ^id <i>)
  -->
  (make shipped ^id <i>)
  (write shipping <i>))
"""


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    wal_root = tmp_path_factory.mktemp("service-wal")
    with ServiceThread(ServiceConfig(
        port=0, wal_root=str(wal_root), engine_workers=2,
    )) as thread:
        yield thread


@pytest.fixture
def client(server):
    with ServiceClient(*server.address) as connection:
        yield connection


def _unique(request):
    return request.node.name.replace("[", "-").replace("]", "")


class TestBasicOps:
    def test_ping(self, client):
        response = client.ping()
        assert response["pong"] is True
        assert response["protocol"] == 1

    def test_create_assert_run_round_trip(self, client, request):
        sid = _unique(request)
        created = client.create(sid, PROGRAM, durable=False)
        assert created["rules"] == 1
        client.assert_facts(sid, [
            ("order", {"id": 1, "status": "open"}),
            ("order", {"id": 2, "status": "held"}),
        ])
        response, events = client.run(sid)
        assert response["fired"] == 1
        assert response["stopped"] == "quiescent"
        kinds = [e["event"] for e in events]
        assert kinds.count("firing") == 1
        assert "write" in kinds
        facts = [e for e in events if e["event"] == "fact"]
        assert facts == [{
            "event": "fact", "id": response["id"], "sign": "+",
            "class": "shipped", "tag": 3, "values": {"id": 1},
        }]
        client.close_session(sid)

    def test_run_events_drain_between_requests(self, client, request):
        sid = _unique(request)
        client.create(sid, PROGRAM, durable=False)
        client.assert_facts(sid, [("order", {"id": 1, "status": "open"})])
        _, first = client.run(sid)
        _, second = client.run(sid)
        assert any(e["event"] == "firing" for e in first)
        # Quiescent re-run must not replay the old trace.
        assert second == []
        client.close_session(sid)

    def test_facts_dump(self, client, request):
        sid = _unique(request)
        client.create(sid, PROGRAM, durable=False)
        client.assert_facts(sid, [
            ("order", {"id": 1, "status": "open"}),
            ("order", {"id": 2, "status": "held"}),
        ])
        response, events = client.facts(sid, "order")
        assert response["count"] == 2
        assert {e["values"]["id"] for e in events} == {1, 2}
        client.close_session(sid)

    def test_stats_surface(self, client, request):
        sid = _unique(request)
        client.create(sid, PROGRAM, durable=False)
        stats = client.stats()
        assert stats["server"]["connections"] >= 1
        assert stats["registry"]["sessions"] >= 1
        assert stats["rule_bases"]["rule_bases"] >= 1
        assert any(s["session"] == sid for s in stats["sessions"])
        client.close_session(sid)


class TestErrors:
    def test_unknown_op(self, client):
        with pytest.raises(ServiceClientError) as info:
            client.request("frobnicate")
        assert info.value.code == "bad_request"

    def test_missing_session_field(self, client):
        with pytest.raises(ServiceClientError) as info:
            client.request("run")
        assert info.value.code == "bad_request"

    def test_no_such_session(self, client):
        with pytest.raises(ServiceClientError) as info:
            client.run("never-created")
        assert info.value.code == "no_session"

    def test_invalid_session_id(self, client):
        with pytest.raises(ServiceClientError) as info:
            client.create("../escape", PROGRAM)
        assert info.value.code == "bad_request"

    def test_duplicate_session(self, client, request):
        sid = _unique(request)
        client.create(sid, PROGRAM, durable=False)
        with pytest.raises(ServiceClientError) as info:
            client.create(sid, PROGRAM)
        assert info.value.code == "bad_request"
        client.close_session(sid)

    def test_parse_error_maps_to_engine_code(self, client, request):
        sid = _unique(request)
        with pytest.raises(ServiceClientError) as info:
            client.create(sid, "(p broken")
        assert info.value.code == "engine"
        # The connection survives a failed request.
        assert client.ping()["pong"] is True

    def test_bad_fact_shape(self, client, request):
        sid = _unique(request)
        client.create(sid, PROGRAM, durable=False)
        with pytest.raises(ServiceClientError) as info:
            client.request("assert", session=sid, facts=["not-a-pair"])
        assert info.value.code == "bad_request"
        client.close_session(sid)

    def test_checkpoint_needs_durability(self, client, request):
        sid = _unique(request)
        client.create(sid, PROGRAM, durable=False)
        with pytest.raises(ServiceClientError) as info:
            client.checkpoint(sid)
        assert info.value.code == "bad_request"
        client.close_session(sid)

    def test_malformed_line_is_protocol_error(self, server):
        with ServiceClient(*server.address) as raw:
            raw._sock.sendall(b"this is not json\n")
            response = raw._read_line()
            assert response["ok"] is False
            assert response["error"] == "protocol"
            # Framing is intact: the next request still works.
            assert raw.ping()["pong"] is True

    def test_non_object_payload_is_protocol_error(self, server):
        with ServiceClient(*server.address) as raw:
            raw._sock.sendall(encode_line([1, 2, 3]))
            response = raw._read_line()
            assert response["error"] == "protocol"


class TestDurableSessions:
    def test_checkpoint_and_wire_resume(self, server, request):
        sid = _unique(request)
        with ServiceClient(*server.address) as client:
            client.create(sid, PROGRAM)
            client.assert_facts(
                sid, [("order", {"id": 1, "status": "open"})]
            )
            response, _ = client.run(sid)
            assert response["fired"] == 1
            assert client.checkpoint(sid)["path"]
            client.close_session(sid)

        # A new connection resumes the evicted/closed session by id.
        with ServiceClient(*server.address) as client:
            resumed = client.create(sid, "", resume=True)
            assert resumed["resumed"] is True
            assert resumed["wm_size"] == 2  # order + shipped
            response, _ = client.run(sid)
            assert response["fired"] == 0  # refraction survived
            client.close_session(sid)

    def test_fresh_create_on_used_dir_names_session(self, server, request):
        sid = _unique(request)
        with ServiceClient(*server.address) as client:
            client.create(sid, PROGRAM)
            client.assert_facts(
                sid, [("order", {"id": 1, "status": "open"})]
            )
            client.close_session(sid)
            with pytest.raises(ServiceClientError) as info:
                client.create(sid, PROGRAM)
            assert info.value.code == "engine"
            assert sid in str(info.value)


class TestBackpressure:
    def test_global_queue_full_rejects_with_retry_after(self):
        with ServiceThread(ServiceConfig(port=0, global_queue=0)) as srv:
            with ServiceClient(*srv.address) as client:
                with pytest.raises(ServiceBusyError) as info:
                    client.create("t1", PROGRAM, durable=False)
                assert info.value.retry_after > 0
                assert info.value.code == "busy"

    def test_session_queue_full_rejects(self):
        with ServiceThread(ServiceConfig(port=0, session_queue=0)) as srv:
            with ServiceClient(*srv.address) as client:
                client.create("t1", PROGRAM, durable=False)
                with pytest.raises(ServiceBusyError):
                    client.run("t1")

    def test_client_retry_honours_backoff(self):
        with ServiceThread(ServiceConfig(port=0, global_queue=0)) as srv:
            with ServiceClient(*srv.address) as client:
                with pytest.raises(ServiceBusyError):
                    client.create("t1", PROGRAM, durable=False,
                                  retry=True)
                assert client.busy_retries == 50
                assert client.backoff_s > 0


class TestIdleEviction:
    def test_idle_session_swept_and_resumable(self, tmp_path):
        config = ServiceConfig(
            port=0, wal_root=str(tmp_path / "wal"),
            idle_ttl=0.2, sweep_interval=0.05,
        )
        with ServiceThread(config) as srv:
            with ServiceClient(*srv.address) as client:
                client.create("t1", PROGRAM)
                client.assert_facts(
                    "t1", [("order", {"id": 1, "status": "open"})]
                )
                # Poll the (session-agnostic) stats surface: a facts
                # request would touch the session and reset its idle
                # clock — the sweep only takes truly idle tenants.
                deadline = time.time() + 5.0
                while time.time() < deadline:
                    time.sleep(0.1)
                    if client.stats()["registry"]["evicted_idle"]:
                        break
                else:
                    pytest.fail("idle session was never evicted")
                with pytest.raises(ServiceClientError) as info:
                    client.request("facts", session="t1")
                assert info.value.code == "no_session"
                resumed = client.create("t1", "", resume=True)
                assert resumed["resumed"] is True
                assert resumed["wm_size"] == 1


class TestConcurrentTenants:
    def test_interleaved_sessions_do_not_cross(self, server):
        import threading

        errors = []

        def tenant(index):
            try:
                sid = f"tenant-{index}"
                with ServiceClient(*server.address) as client:
                    client.create(sid, PROGRAM, durable=False,
                                  retry=True)
                    for batch in range(3):
                        client.assert_facts(sid, [
                            ("order", {
                                "id": index * 100 + batch,
                                "status": "open",
                            }),
                        ], retry=True)
                        response, events = client.run(sid, retry=True)
                        assert response["fired"] == 1
                        (firing,) = [
                            e for e in events if e["event"] == "fact"
                        ]
                        assert firing["values"]["id"] == (
                            index * 100 + batch
                        )
                    client.close_session(sid, retry=True)
            except Exception as error:  # surfaced below
                errors.append(error)

        threads = [
            threading.Thread(target=tenant, args=(i,)) for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
