"""Exactly-once request semantics: idempotency keys, the per-session
request journal, and its WAL/checkpoint-backed survival."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.service import (
    ServiceClient,
    ServiceClientError,
    ServiceConfig,
    ServiceThread,
)
from repro.service.session import DEFAULT_JOURNAL_LIMIT, journal_put

PROGRAM = """
(literalize order id status)
(literalize shipped id)
(p ship-open
  (order ^id <i> ^status open)
  -(shipped ^id <i>)
  -->
  (make shipped ^id <i>)
  (write shipping <i>))
"""


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    wal_root = tmp_path_factory.mktemp("idempotency-wal")
    with ServiceThread(ServiceConfig(
        port=0, wal_root=str(wal_root), engine_workers=2,
    )) as thread:
        yield thread


@pytest.fixture
def client(server):
    with ServiceClient(*server.address) as connection:
        yield connection


def _unique(request):
    return request.node.name.replace("[", "-").replace("]", "")


def _tagged_facts(client, sid):
    _, events = client.facts(sid)
    return sorted(
        (e["class"], e["tag"], tuple(sorted(e["values"].items())))
        for e in events
    )


class TestJournalPut:
    def test_caps_in_insertion_order(self):
        engine = SimpleNamespace(request_journal={})
        for i in range(6):
            journal_put(engine, f"k{i}", {"n": i}, limit=4)
        assert list(engine.request_journal) == ["k2", "k3", "k4", "k5"]

    def test_default_limit(self):
        engine = SimpleNamespace(request_journal={})
        for i in range(DEFAULT_JOURNAL_LIMIT + 10):
            journal_put(engine, f"k{i}", {"n": i})
        assert len(engine.request_journal) == DEFAULT_JOURNAL_LIMIT


class TestKeyedOps:
    def test_retried_assert_applies_exactly_once(self, client, request):
        sid = _unique(request)
        client.create(sid, PROGRAM, durable=True)
        key = f"{sid}-a1"
        first = client.assert_facts(
            sid, [("order", {"id": 1, "status": "open"})], key=key,
        )
        assert "deduped" not in first
        again = client.assert_facts(
            sid, [("order", {"id": 1, "status": "open"})], key=key,
        )
        assert again["deduped"] is True
        assert again["ingested"] == first["ingested"] == 1
        assert again["wm_size"] == first["wm_size"] == 1
        response, _ = client.facts(sid, "order")
        assert response["count"] == 1
        client.close_session(sid)

    def test_retried_run_replays_summary_without_refiring(
        self, client, request
    ):
        sid = _unique(request)
        client.create(sid, PROGRAM, durable=True)
        client.assert_facts(
            sid, [("order", {"id": 1, "status": "open"})],
        )
        key = f"{sid}-r1"
        first, events = client.run(sid, key=key)
        assert first["fired"] == 1
        assert events
        again, replay_events = client.run(sid, key=key)
        assert again["deduped"] is True
        assert again["fired"] == 1
        assert replay_events == []  # a journal hit streams nothing
        # And the dedup really prevented a re-run: exactly one shipped.
        response, _ = client.facts(sid, "shipped")
        assert response["count"] == 1
        client.close_session(sid)

    def test_retried_create_returns_the_live_session(
        self, client, request
    ):
        sid = _unique(request)
        key = f"{sid}-c1"
        first = client.create(sid, PROGRAM, durable=True, key=key)
        assert "deduped" not in first
        again = client.create(sid, PROGRAM, durable=True, key=key)
        assert again["deduped"] is True
        assert again["session"] == sid
        # A different key is a genuine conflict, not a retry.
        with pytest.raises(ServiceClientError) as info:
            client.create(sid, PROGRAM, durable=True, key=f"{sid}-c2")
        assert info.value.code == "bad_request"
        assert "already exists" in str(info.value)
        client.close_session(sid)

    def test_keyless_requests_never_dedup(self, client, request):
        sid = _unique(request)
        client.create(sid, PROGRAM, durable=False)
        for _ in range(2):
            client.assert_facts(
                sid, [("order", {"id": 1, "status": "open"})],
            )
        response, _ = client.facts(sid, "order")
        assert response["count"] == 2
        client.close_session(sid)

    def test_bad_keys_are_rejected(self, client, request):
        sid = _unique(request)
        client.create(sid, PROGRAM, durable=False)
        for bad in ("", 123, "x" * 129):
            with pytest.raises(ServiceClientError) as info:
                client.request(
                    "assert", session=sid,
                    facts=[["order", {"id": 9, "status": "open"}]],
                    key=bad,
                )
            assert info.value.code == "bad_request"
        response, _ = client.facts(sid, "order")
        assert response["count"] == 0
        client.close_session(sid)

    def test_idempotent_flag_generates_a_stable_key(self, client, request):
        sid = _unique(request)
        client.create(sid, PROGRAM, durable=False)
        response = client.assert_facts(
            sid, [("order", {"id": 1, "status": "open"})],
            idempotent=True,
        )
        assert "deduped" not in response
        # Each call gets a fresh key, so two calls are two batches.
        client.assert_facts(
            sid, [("order", {"id": 1, "status": "open"})],
            idempotent=True,
        )
        response, _ = client.facts(sid, "order")
        assert response["count"] == 2
        client.close_session(sid)


class TestJournalDurability:
    def test_assert_dedup_survives_resume(self, client, request):
        sid = _unique(request)
        client.create(sid, PROGRAM, durable=True)
        key = f"{sid}-a1"
        first = client.assert_facts(
            sid, [("order", {"id": 1, "status": "open"})], key=key,
        )
        before = _tagged_facts(client, sid)
        client.close_session(sid)  # no checkpoint: resume replays WAL
        client.create(sid, "", resume=True)
        again = client.assert_facts(
            sid, [("order", {"id": 1, "status": "open"})], key=key,
        )
        # The key rode inside the delta record: replay rebuilt the
        # journal entry (marked as recovered) and the retry is a no-op.
        assert again["deduped"] is True
        assert again["recovered"] is True
        assert again["ingested"] == first["ingested"] == 1
        assert _tagged_facts(client, sid) == before
        client.close_session(sid)

    def test_run_dedup_survives_resume(self, client, request):
        sid = _unique(request)
        client.create(sid, PROGRAM, durable=True)
        client.assert_facts(
            sid, [("order", {"id": 1, "status": "open"})],
        )
        key = f"{sid}-r1"
        first, _ = client.run(sid, key=key)
        assert first["fired"] == 1
        client.close_session(sid)
        client.create(sid, "", resume=True)
        again, events = client.run(sid, key=key)
        # The run summary was journalled as a ``j`` record.
        assert again["deduped"] is True
        assert again["fired"] == 1
        assert events == []
        response, _ = client.facts(sid, "shipped")
        assert response["count"] == 1
        client.close_session(sid)

    def test_dedup_survives_checkpoint_truncation(self, client, request):
        sid = _unique(request)
        client.create(sid, PROGRAM, durable=True)
        key_a = f"{sid}-a1"
        key_r = f"{sid}-r1"
        client.assert_facts(
            sid, [("order", {"id": 1, "status": "open"})], key=key_a,
        )
        client.run(sid, key=key_r)
        # Checkpointing truncates the WAL; the journal must ride the
        # checkpoint manifest across the truncation.
        client.checkpoint(sid)
        key_b = f"{sid}-a2"
        client.assert_facts(
            sid, [("order", {"id": 2, "status": "open"})], key=key_b,
        )
        before = _tagged_facts(client, sid)
        client.close_session(sid)
        client.create(sid, "", resume=True)
        for key, expect_ingested in ((key_a, 1), (key_b, 1)):
            again = client.assert_facts(
                sid, [("order", {"id": 99, "status": "open"})], key=key,
            )
            assert again["deduped"] is True
            assert again["ingested"] == expect_ingested
        run_again, _ = client.run(sid, key=key_r)
        assert run_again["deduped"] is True
        assert _tagged_facts(client, sid) == before
        client.close_session(sid)


class TestJournalCap:
    def test_old_keys_lose_dedup_protection(self, tmp_path):
        with ServiceThread(ServiceConfig(
            port=0, wal_root=str(tmp_path / "wal"), journal_limit=2,
        )) as thread:
            with ServiceClient(*thread.address) as client:
                client.create("capped", PROGRAM, durable=True)
                for i in range(4):
                    client.assert_facts(
                        "capped",
                        [("order", {"id": i, "status": "held"})],
                        key=f"k{i}",
                    )
                # k2/k3 are still journalled; k0 was evicted.
                again = client.assert_facts(
                    "capped",
                    [("order", {"id": 3, "status": "held"})],
                    key="k3",
                )
                assert again["deduped"] is True
                reapplied = client.assert_facts(
                    "capped",
                    [("order", {"id": 0, "status": "held"})],
                    key="k0",
                )
                assert "deduped" not in reapplied
                response, _ = client.facts("capped", "order")
                assert response["count"] == 5
