"""Shared rule bases: parse once, kernel-compile once, serve N tenants."""

from __future__ import annotations

import pytest

from repro.rete import ReteNetwork
from repro.service.rulebase import RuleBase, RuleBaseCache, rule_base_key

PROGRAM = """
(literalize dept name)
(literalize emp name dept salary)
(p dept-size
  (dept ^name <d>)
  { [emp ^dept <d>] <staff> }
  :test ((count <staff>) >= 1)
  -->
  (write staffed <d> (count <staff>)))
"""


class TestKey:
    def test_same_source_same_key(self):
        assert rule_base_key(PROGRAM) == rule_base_key(PROGRAM)

    def test_source_changes_key(self):
        assert rule_base_key(PROGRAM) != rule_base_key(PROGRAM + " ")

    def test_matcher_changes_key(self):
        assert (rule_base_key(PROGRAM, matcher="rete")
                != rule_base_key(PROGRAM, matcher="treat"))

    def test_kernel_mode_irrelevant_for_interpreted_matchers(self):
        assert (rule_base_key(PROGRAM, matcher="treat", kernels="off")
                == rule_base_key(PROGRAM, matcher="treat",
                                 kernels="exec"))

    def test_kernel_mode_distinguishes_rete(self):
        assert (rule_base_key(PROGRAM, matcher="rete", kernels="closure")
                != rule_base_key(PROGRAM, matcher="rete",
                                 kernels="exec"))


class TestRuleBase:
    def test_engines_share_one_kernel_pack(self):
        base = RuleBase(PROGRAM, matcher="rete", kernels="closure")
        engines = [base.build_engine() for _ in range(4)]
        try:
            # The acceptance contract: N sessions, one compile's worth
            # of kernels; every later network hits the shared cache.
            stats = base.kernel_stats()
            one_session = RuleBase(
                PROGRAM, matcher="rete", kernels="closure"
            )
            one_session.build_engine().close()
            assert (stats["compiled"]
                    == one_session.kernel_stats()["compiled"])
            assert stats["cache_hits"] > stats["compiled"]
            assert base.sessions_built == 4
        finally:
            for engine in engines:
                engine.close()

    def test_engines_are_isolated(self):
        base = RuleBase(PROGRAM)
        first = base.build_engine()
        second = base.build_engine()
        try:
            first.make("dept", name="d0")
            first.make("emp", name="sue", dept="d0", salary=100)
            first.run()
            assert len(first.wm) == 2
            assert len(second.wm) == 0
            assert first.output == ["staffed d0 1"]
            assert second.output == []
        finally:
            first.close()
            second.close()

    def test_matcher_instances_are_private(self):
        base = RuleBase(PROGRAM)
        first = base.build_matcher()
        second = base.build_matcher()
        assert first is not second
        assert isinstance(first, ReteNetwork)
        # ... but both ride the same compiled-kernel pack.
        assert first.kernels is second.kernels
        assert first.kernels is base.kernel_pack

    def test_interpreted_matcher_has_no_pack(self):
        base = RuleBase(PROGRAM, matcher="treat")
        assert base.kernel_pack is None
        assert base.kernel_stats() == {"compiled": 0, "cache_hits": 0}

    def test_kernels_off_has_no_pack(self):
        base = RuleBase(PROGRAM, matcher="rete", kernels="off")
        assert base.kernel_pack is None


class TestRuleBaseCache:
    def test_miss_then_hits(self):
        cache = RuleBaseCache()
        base, hit = cache.get(PROGRAM)
        assert hit is False
        again, hit = cache.get(PROGRAM)
        assert hit is True
        assert again is base
        assert cache.compiles == 1
        assert cache.hits == 1

    def test_distinct_configs_do_not_collide(self):
        cache = RuleBaseCache()
        rete, _ = cache.get(PROGRAM, matcher="rete")
        treat, _ = cache.get(PROGRAM, matcher="treat")
        assert rete is not treat
        assert len(cache) == 2

    def test_stats_aggregate(self):
        cache = RuleBaseCache()
        base, _ = cache.get(PROGRAM)
        cache.get(PROGRAM)
        base.build_engine().close()
        stats = cache.stats()
        assert stats["rule_bases"] == 1
        assert stats["compiles"] == 1
        assert stats["hits"] == 1
        assert stats["sessions_built"] == 1
        assert stats["kernels_compiled"] > 0

    def test_bad_program_is_not_cached(self):
        cache = RuleBaseCache()
        with pytest.raises(Exception):
            cache.get("(p broken")
        assert len(cache) == 0
