"""Hot rule reload over the wire: add/remove/replace ops, per-tenant
copy-on-write rule-base divergence, exactly-once retries, drain.

The multi-tenant contract: sessions created from one program share one
:class:`RuleBase` (one parse, one kernel pack).  A tenant that reloads
rules *forks* its rule base — untouched tenants keep sharing the
parent — and the fork shares the parent's kernel pack, so replacing a
rule shared by N tenants compiles the new rule's kernels once, not N
times.  Tenants reloading to byte-identical programs converge on one
forked entry.
"""

from __future__ import annotations

import pytest

from repro.service import (
    ServiceBusyError,
    ServiceClient,
    ServiceClientError,
    ServiceConfig,
    ServiceThread,
)

PROGRAM = """
(literalize order id status total)
(literalize flag id note)
(p flag-open
  (order ^id <i> ^status open)
  -->
  (make flag ^id <i> ^note open)
  (write flag <i>))
(p audit-held
  (order ^id <i> ^status held)
  -->
  (write held <i>))
"""

BIG_RULE = (
    "(p flag-big (order ^id <i> ^total {<t> > 100}) "
    "--> (write big <i> <t>))"
)

FLAG_V2 = (
    "(p flag-open (order ^id <i> ^status open) "
    "--> (write flag2 <i>))"
)


@pytest.fixture
def server(tmp_path):
    with ServiceThread(ServiceConfig(
        port=0, wal_root=str(tmp_path / "wal"), engine_workers=2,
    )) as thread:
        yield thread


@pytest.fixture
def client(server):
    with ServiceClient(*server.address) as connection:
        yield connection


class TestWireOps:
    def test_add_rule_round_trip(self, client):
        created = client.create("s1", PROGRAM, durable=False)
        assert created["rules"] == 2
        response = client.add_rule("s1", BIG_RULE)
        assert response["rule"] == "flag-big"
        assert response["rules"] == 3
        assert isinstance(response["version"], str)
        client.assert_facts(
            "s1", [("order", {"id": 1, "status": "open", "total": 500})]
        )
        run, events = client.run("s1")
        fired = sorted(
            e["rule"] for e in events if e["event"] == "firing"
        )
        assert fired == ["flag-big", "flag-open"]

    def test_remove_rule_round_trip(self, client):
        client.create("s2", PROGRAM, durable=False)
        response = client.remove_rule("s2", "audit-held")
        assert response["rule"] == "audit-held"
        assert response["rules"] == 1
        client.assert_facts(
            "s2", [("order", {"id": 7, "status": "held", "total": 1})]
        )
        run, events = client.run("s2")
        assert run["fired"] == 0

    def test_replace_rule_round_trip(self, client):
        client.create("s3", PROGRAM, durable=False)
        response = client.replace_rule("s3", "flag-open", FLAG_V2)
        assert response["rule"] == "flag-open"
        assert response["replaced"] == "flag-open"
        assert response["rules"] == 2
        client.assert_facts(
            "s3", [("order", {"id": 9, "status": "open", "total": 1})]
        )
        _, events = client.run("s3")
        writes = [e for e in events if e["event"] == "write"]
        assert [w["text"] for w in writes] == ["flag2 9"]

    def test_reload_counters_and_session_info(self, client):
        client.create("s4", PROGRAM, durable=False)
        client.add_rule("s4", BIG_RULE)
        client.remove_rule("s4", "flag-big")
        client.replace_rule("s4", "flag-open", FLAG_V2)
        stats = client.stats()
        assert stats["server"]["rules_added"] == 1
        assert stats["server"]["rules_removed"] == 1
        assert stats["server"]["rules_replaced"] == 1
        info = next(
            s for s in stats["sessions"] if s["session"] == "s4"
        )
        assert info["reloads"] == 3
        assert info["rules"] == 2

    def test_version_changes_only_when_program_changes(self, client):
        client.create("s5", PROGRAM, durable=False)
        first = client.add_rule("s5", BIG_RULE)
        second = client.remove_rule("s5", "flag-big")
        third = client.add_rule("s5", BIG_RULE)
        assert first["version"] != second["version"]
        assert first["version"] == third["version"]


class TestValidation:
    def test_add_rule_requires_source(self, client):
        client.create("v1", PROGRAM, durable=False)
        with pytest.raises(ServiceClientError) as err:
            client.request("add_rule", session="v1")
        assert err.value.response["error"] == "bad_request"

    def test_remove_rule_requires_name(self, client):
        client.create("v2", PROGRAM, durable=False)
        with pytest.raises(ServiceClientError) as err:
            client.request("remove_rule", session="v2")
        assert err.value.response["error"] == "bad_request"

    def test_unknown_rule_is_an_engine_error(self, client):
        client.create("v3", PROGRAM, durable=False)
        with pytest.raises(ServiceClientError) as err:
            client.remove_rule("v3", "ghost")
        assert err.value.response["error"] == "engine"
        # The session survives the failed surgery.
        assert client.stats()["server"].get("rules_removed", 0) == 0

    def test_duplicate_add_is_an_engine_error(self, client):
        client.create("v4", PROGRAM, durable=False)
        with pytest.raises(ServiceClientError) as err:
            client.add_rule("v4", "(p flag-open (order ^id <i>) "
                                  "--> (write x))")
        assert err.value.response["error"] == "engine"

    def test_reload_rejected_while_draining(self, server, client):
        client.create("v5", PROGRAM, durable=False)
        server.begin_drain()
        with pytest.raises(ServiceBusyError):
            client.add_rule("v5", BIG_RULE)


class TestCopyOnWriteFork:
    def test_untouched_tenants_keep_sharing_the_parent(self, client):
        for sid in ("t1", "t2", "t3"):
            client.create(sid, PROGRAM, durable=False)
        before = client.stats()["rule_bases"]
        assert before["rule_bases"] == 1
        assert before["sessions_built"] == 3

        forked = client.replace_rule("t1", "flag-open", FLAG_V2)
        assert forked["forked"] is True
        after = client.stats()["rule_bases"]
        assert after["rule_bases"] == 2
        assert after["forks"] == 1

        # The untouched tenants still run the ORIGINAL rule body.
        client.assert_facts(
            "t2", [("order", {"id": 2, "status": "open", "total": 1})]
        )
        _, events = client.run("t2")
        writes = [e["text"] for e in events if e["event"] == "write"]
        assert writes == ["flag 2"]

    def test_identical_reloads_converge_on_one_fork(self, client):
        for sid in ("c1", "c2"):
            client.create(sid, PROGRAM, durable=False)
        first = client.replace_rule("c1", "flag-open", FLAG_V2)
        second = client.replace_rule("c2", "flag-open", FLAG_V2)
        assert first["forked"] is True
        assert second["forked"] is False
        assert first["version"] == second["version"]
        stats = client.stats()["rule_bases"]
        assert stats["forks"] == 1
        assert stats["rule_bases"] == 2
        assert client.stats()["server"]["rulebase_forks"] == 1

    def test_n_tenant_replace_compiles_once(self, client):
        tenants = [f"k{i}" for i in range(4)]
        for sid in tenants:
            client.create(sid, PROGRAM, durable=False)
        baseline = client.stats()["rule_bases"]["kernels_compiled"]
        client.replace_rule(tenants[0], "flag-open", FLAG_V2)
        first = client.stats()["rule_bases"]["kernels_compiled"]
        for sid in tenants[1:]:
            client.replace_rule(sid, "flag-open", FLAG_V2)
        final = client.stats()["rule_bases"]["kernels_compiled"]
        # The first replace may compile kernels for the new body; the
        # other N-1 replaces reuse them via the shared pack.
        assert first >= baseline
        assert final == first


class TestExactlyOnce:
    def test_keyed_replace_dedups(self, client):
        client.create("e1", PROGRAM, durable=True)
        first = client.replace_rule(
            "e1", "flag-open", FLAG_V2, key="swap-1"
        )
        again = client.replace_rule(
            "e1", "flag-open", FLAG_V2, key="swap-1"
        )
        assert "deduped" not in first
        assert again["deduped"] is True
        assert again["rule"] == first["rule"]
        assert again["rules"] == first["rules"]
        assert client.stats()["server"]["deduped_requests"] >= 1
        # Applied once: replacing again without the key is a fresh
        # surgery (the rule exists, so the swap succeeds again).
        client.replace_rule("e1", "flag-open", FLAG_V2)

    def test_durable_reload_survives_close_and_resume(self, client):
        client.create("e2", PROGRAM, durable=True)
        client.add_rule("e2", BIG_RULE)
        client.replace_rule("e2", "flag-open", FLAG_V2)
        client.close_session("e2", checkpoint=True)

        resumed = client.create("e2", "", resume=True)
        assert resumed["resumed"] is True
        assert resumed["rules"] == 3
        client.assert_facts(
            "e2", [("order", {"id": 4, "status": "open", "total": 900})]
        )
        _, events = client.run("e2")
        writes = sorted(
            e["text"] for e in events if e["event"] == "write"
        )
        assert writes == ["big 4 900", "flag2 4"]
