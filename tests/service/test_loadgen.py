"""The load generator: percentile math and a small end-to-end drive."""

from __future__ import annotations

from repro.service import ServiceConfig, ServiceThread
from repro.service.loadgen import (
    DEFAULT_PROGRAM,
    main,
    percentile,
    run_load,
)


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_single(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.99) == 7.0

    def test_median_and_tail(self):
        values = sorted(float(i) for i in range(1, 101))
        # Nearest-rank over indices 0..99: 0.5 lands on index 50.
        assert percentile(values, 0.50) == 51.0
        assert percentile(values, 0.99) == 99.0
        assert percentile(values, 1.0) == 100.0


class TestRunLoad:
    def test_small_fleet_drives_cleanly(self):
        with ServiceThread(ServiceConfig(port=0)) as server:
            host, port = server.address
            report = run_load(
                host, port, sessions=3, ticks=2, facts_per_tick=5,
                matchers=("rete", "treat"),
            )
        assert report["errors"] == []
        assert report["events_total"] == 3 * 2 * 5
        assert report["firings"] > 0
        # Three sessions over two matchers: two compiles, one hit.
        assert report["server"]["rule_bases"]["compiles"] == 2
        assert report["rulebase_hits"] == 1
        for op in ("assert", "run"):
            summary = report["latency"][op]
            assert summary["count"] == 3 * 2
            assert summary["p99_ms"] >= summary["p50_ms"] >= 0

    def test_rate_pacing_slows_the_fleet(self):
        with ServiceThread(ServiceConfig(port=0)) as server:
            host, port = server.address
            report = run_load(
                host, port, sessions=1, ticks=3, facts_per_tick=10,
                rate=1000.0,  # 10 facts/tick @ 1000/s => >= 20ms floor
            )
        assert report["errors"] == []
        assert report["duration_s"] >= 0.02

    def test_default_program_parses(self):
        from repro.lang.parser import parse_program

        literalizations, rules = parse_program(DEFAULT_PROGRAM)
        assert len(rules) == 2
        assert len(literalizations) == 3


class TestCli:
    def test_self_serve_smoke(self, capsys, tmp_path):
        out = tmp_path / "load.json"
        code = main([
            "--sessions", "2", "--ticks", "2", "--facts", "5",
            "--json", str(out), "--fail-on-error",
        ])
        assert code == 0
        assert out.exists()
        captured = capsys.readouterr()
        assert "events_per_s" in captured.out
