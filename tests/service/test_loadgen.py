"""The load generator: percentile math, shed-vs-error classification,
and a small end-to-end drive."""

from __future__ import annotations

from repro.service import (
    ServiceBusyError,
    ServiceClientError,
    ServiceConfig,
    ServiceThread,
)
from repro.service.loadgen import (
    DEFAULT_PROGRAM,
    _Worker,
    main,
    percentile,
    run_load,
)


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_single(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.99) == 7.0

    def test_median_and_tail(self):
        values = sorted(float(i) for i in range(1, 101))
        # Nearest-rank over indices 0..99: 0.5 lands on index 50.
        assert percentile(values, 0.50) == 51.0
        assert percentile(values, 0.99) == 99.0
        assert percentile(values, 1.0) == 100.0


def _worker(**overrides):
    kwargs = dict(
        program=DEFAULT_PROGRAM, matcher="rete", ticks=1,
        facts_per_tick=1, rate=None, durable=False, parallel=False,
        session_prefix="unit",
    )
    kwargs.update(overrides)
    return _Worker(0, "127.0.0.1", 0, **kwargs)


class TestFailureClassification:
    def test_shed_load_is_not_an_error(self):
        worker = _worker()

        def busy():
            raise ServiceBusyError({
                "ok": False, "error": "busy", "message": "shed",
                "retry_after": 0.01,
            })

        result, ok = worker._call(None, busy)
        assert (result, ok) == (None, False)
        assert worker.shed == 1
        assert worker.errors == []

    def test_vanished_session_recovers_and_retries(self):
        worker = _worker()
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise ServiceClientError({
                    "ok": False, "error": "no_session",
                    "message": "evicted",
                })
            return "applied"

        class _Recorder:
            created = None

            def create(self, sid, program, **kwargs):
                _Recorder.created = (sid, kwargs)
                return {"ok": True}

        result, ok = worker._call(_Recorder(), flaky)
        assert (result, ok) == ("applied", True)
        assert worker.session_restarts == 1
        assert worker.errors == []
        assert _Recorder.created[0] == "unit-0"

    def test_real_errors_are_recorded(self):
        worker = _worker()

        def broken():
            raise ServiceClientError({
                "ok": False, "error": "engine", "message": "halted",
            })

        result, ok = worker._call(None, broken)
        assert (result, ok) == (None, False)
        assert worker.shed == 0
        assert len(worker.errors) == 1
        assert "halted" in worker.errors[0]

    def test_connection_loss_is_an_error(self):
        worker = _worker()

        def torn():
            raise ConnectionError("wire gone")

        _result, ok = worker._call(None, torn)
        assert not ok
        assert any("wire gone" in e for e in worker.errors)


class TestRunLoad:
    def test_small_fleet_drives_cleanly(self):
        with ServiceThread(ServiceConfig(port=0)) as server:
            host, port = server.address
            report = run_load(
                host, port, sessions=3, ticks=2, facts_per_tick=5,
                matchers=("rete", "treat"),
            )
        assert report["errors"] == []
        assert report["events_total"] == 3 * 2 * 5
        assert report["firings"] > 0
        # Three sessions over two matchers: two compiles, one hit.
        assert report["server"]["rule_bases"]["compiles"] == 2
        assert report["rulebase_hits"] == 1
        for op in ("assert", "run"):
            summary = report["latency"][op]
            assert summary["count"] == 3 * 2
            assert summary["p99_ms"] >= summary["p50_ms"] >= 0

    def test_rate_pacing_slows_the_fleet(self):
        with ServiceThread(ServiceConfig(port=0)) as server:
            host, port = server.address
            report = run_load(
                host, port, sessions=1, ticks=3, facts_per_tick=10,
                rate=1000.0,  # 10 facts/tick @ 1000/s => >= 20ms floor
            )
        assert report["errors"] == []
        assert report["duration_s"] >= 0.02

    def test_report_carries_resilience_counters(self, tmp_path):
        with ServiceThread(ServiceConfig(
            port=0, wal_root=str(tmp_path / "wal"),
        )) as server:
            host, port = server.address
            report = run_load(
                host, port, sessions=2, ticks=2, facts_per_tick=3,
                durable=True, idempotent=True, deadline_ms=30000,
                session_prefix="counted",
            )
        assert report["errors"] == []
        assert report["idempotent"] is True
        assert report["durable"] is True
        for counter in ("busy_shed", "reconnects", "retries",
                        "deduped", "session_restarts"):
            assert report[counter] == 0, counter

    def test_aggressive_eviction_restarts_sessions(self, tmp_path):
        # A sweeper evicting after ~40ms idle forces mid-drive
        # restarts; with durable sessions every batch still lands and
        # the restarts are classified as recoveries, not errors.
        with ServiceThread(ServiceConfig(
            port=0, wal_root=str(tmp_path / "wal"),
            idle_ttl=0.04, sweep_interval=0.01,
        )) as server:
            host, port = server.address
            report = run_load(
                host, port, sessions=1, ticks=4, facts_per_tick=2,
                rate=40.0,  # 2 facts/tick @ 40/s => 50ms idle gaps
                durable=True, idempotent=True,
                session_prefix="swept",
            )
        assert report["errors"] == []
        assert report["session_restarts"] >= 1
        assert report["events_total"] == 4 * 2

    def test_default_program_parses(self):
        from repro.lang.parser import parse_program

        literalizations, rules = parse_program(DEFAULT_PROGRAM)
        assert len(rules) == 2
        assert len(literalizations) == 3


class TestCli:
    def test_self_serve_smoke(self, capsys, tmp_path):
        out = tmp_path / "load.json"
        code = main([
            "--sessions", "2", "--ticks", "2", "--facts", "5",
            "--json", str(out), "--fail-on-error",
        ])
        assert code == 0
        assert out.exists()
        captured = capsys.readouterr()
        assert "events_per_s" in captured.out
