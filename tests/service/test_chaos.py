"""The chaos layer: config parsing, deterministic injection, and a
live server surviving wire/lifecycle faults with exactly-once retries."""

from __future__ import annotations

import errno

import pytest

from repro.durability.faultfs import FaultInjector
from repro.errors import ServiceError
from repro.service import (
    ChaosConfig,
    ChaosInjector,
    ServiceClient,
    ServiceClientError,
    ServiceConfig,
    ServiceThread,
)

PROGRAM = """
(literalize order id status)
(literalize shipped id)
(p ship-open
  (order ^id <i> ^status open)
  -(shipped ^id <i>)
  -->
  (make shipped ^id <i>))
"""


class TestChaosConfig:
    def test_parse_round_trip(self):
        config = ChaosConfig.parse(
            "disconnect=0.25, delay=0.5, delay_s=0.01, seed=9"
        )
        assert config.disconnect == 0.25
        assert config.delay == 0.5
        assert config.delay_s == 0.01
        assert config.seed == 9
        assert config.partial == config.kill == 0.0
        assert config.enabled

    def test_parse_passthrough_and_describe(self):
        config = ChaosConfig(kill=0.1, seed=3)
        assert ChaosConfig.parse(config) is config
        described = config.describe()
        assert described["kill"] == 0.1
        assert described["seed"] == 3
        assert "kill=0.1" in repr(config)

    def test_quiet_config_is_disabled(self):
        assert not ChaosConfig().enabled
        assert not ChaosConfig(delay_s=5.0).enabled

    @pytest.mark.parametrize("spec", [
        "frobnicate=1",          # unknown key
        "disconnect",            # no value
        "disconnect=lots",       # malformed value
        "disconnect=1.5",        # out of range
        "kill=-0.1",             # out of range
    ])
    def test_bad_specs_fail_loudly(self, spec):
        with pytest.raises(ServiceError):
            ChaosConfig.parse(spec)


class TestChaosInjector:
    def test_same_seed_same_faults(self):
        make = lambda: ChaosInjector(ChaosConfig(
            disconnect=0.2, partial=0.2, delay=0.2, seed=42,
        ))
        a, b = make(), make()
        rolls = [(a.wire_fault(), b.wire_fault()) for _ in range(300)]
        assert all(x == y for x, y in rolls)
        assert a.counters == b.counters
        assert sum(a.counters.values()) > 0

    def test_wire_faults_are_counted(self):
        injector = ChaosInjector(ChaosConfig(disconnect=1.0))
        assert injector.wire_fault() == "disconnect"
        assert injector.counters["disconnects"] == 1
        assert injector.stats()["injected"]["disconnects"] == 1

    def test_delay_and_partial_bounds(self):
        injector = ChaosInjector(ChaosConfig(delay=1.0, delay_s=0.02))
        for _ in range(50):
            assert 0.01 <= injector.delay_seconds() <= 0.02
            assert 0 <= injector.partial_prefix(100) < 100

    def test_fault_for_session_arms_durability_faults(self):
        injector = ChaosInjector(ChaosConfig(
            wal_error=1.0, evict_crash=1.0, seed=1,
        ))
        fault = injector.fault_for_session("s1")
        assert isinstance(fault, FaultInjector)
        assert fault.crash_at == {"checkpoint.files": 1}
        nth, code = fault.error_at["wal.append.before"]
        assert 2 <= nth <= 12
        assert code == errno.ENOSPC
        quiet = ChaosInjector(ChaosConfig(seed=1))
        assert quiet.fault_for_session("s1") is None


class TestLiveWireChaos:
    def test_keyed_workload_survives_wire_faults(self, tmp_path):
        # Rates are per outbound *line*: multi-line responses (runs,
        # facts dumps) compound them, so these per-line rates already
        # tear down roughly every third response.
        with ServiceThread(ServiceConfig(
            port=0, wal_root=str(tmp_path / "wal"), engine_workers=2,
            chaos="disconnect=0.04,partial=0.03,delay=0.1,"
                  "delay_s=0.002,seed=13",
        )) as thread:
            with ServiceClient(
                *thread.address, seed=5, max_retries=200,
                retry_budget_s=120.0, backoff_base=0.005,
            ) as client:
                client.create(
                    "wired", PROGRAM, durable=True,
                    retry=True, idempotent=True,
                )
                for i in range(10):
                    client.assert_facts(
                        "wired", [("order", {"id": i, "status": "open"})],
                        retry=True, idempotent=True,
                    )
                    response, _ = client.run(
                        "wired", retry=True, idempotent=True,
                    )
                    assert response.get("halted") is False
                response, _ = client.facts("wired", "order", retry=True)
                # Exactly once despite torn connections and resends.
                assert response["count"] == 10
                response, _ = client.facts("wired", "shipped", retry=True)
                assert response["count"] == 10
                stats = client.stats()
                injected = stats["chaos"]["injected"]
                assert sum(injected.values()) > 0
                assert client.reconnects > 0
                assert client.deduped >= 0

    def test_session_kills_recover_via_resume(self, tmp_path):
        with ServiceThread(ServiceConfig(
            port=0, wal_root=str(tmp_path / "wal"), engine_workers=2,
            chaos="kill=0.25,seed=7",
        )) as thread:
            with ServiceClient(*thread.address, seed=11) as client:
                client.create(
                    "doomed", PROGRAM, durable=True,
                    retry=True, idempotent=True,
                )
                applied = 0
                kills_seen = 0
                for i in range(12):
                    key = f"doomed-a{i}"
                    for _attempt in range(8):
                        try:
                            client.assert_facts(
                                "doomed",
                                [("order", {"id": i, "status": "held"})],
                                retry=True, key=key,
                            )
                            applied += 1
                            break
                        except ServiceClientError as error:
                            if error.code != "no_session":
                                raise
                            kills_seen += 1
                            client.create(
                                "doomed", "", resume=True,
                                retry=True, idempotent=True,
                            )
                    else:
                        pytest.fail("session never recovered")
                assert applied == 12
                response, _ = client.facts("doomed", "order", retry=True)
                assert response["count"] == 12
                stats = client.stats()
                assert stats["server"]["chaos_kills"] >= 1
                assert kills_seen >= 1
                assert stats["registry"]["resumed"] >= 1

    def test_wal_enospc_is_retryable_and_exactly_once(self, tmp_path):
        # wal_error=1.0 arms a one-shot ENOSPC on the session's 2nd-12th
        # WAL append; create logs one meta record, so twelve single-fact
        # keyed asserts are guaranteed to cross the armed append.  The
        # failed batch rolls back whole, the client retries on
        # ``unavailable``, and the retry applies it exactly once.
        with ServiceThread(ServiceConfig(
            port=0, wal_root=str(tmp_path / "wal"), engine_workers=2,
            chaos="wal_error=1.0,seed=21",
        )) as thread:
            with ServiceClient(*thread.address, seed=2) as client:
                client.create("squeezed", PROGRAM, durable=True)
                for i in range(12):
                    response = client.assert_facts(
                        "squeezed",
                        [("order", {"id": i, "status": "held"})],
                        retry=True, idempotent=True,
                    )
                    assert response["ingested"] == 1
                response, _ = client.facts("squeezed", "order")
                assert response["count"] == 12
                # Time tags stayed dense: the rolled-back batch did not
                # burn tags (12 orders end at tag 12).
                _, events = client.facts("squeezed", "order")
                assert max(e["tag"] for e in events) == 12
                stats = client.stats()
                assert stats["server"]["unavailable_errors"] >= 1
                assert client.retries >= 1
