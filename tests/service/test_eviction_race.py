"""The eviction-vs-in-flight-request race: a checked-out session is
never evicted mid-request, and a request that loses the race gets a
clean retryable failure — never a half-applied batch."""

from __future__ import annotations

import time

import pytest

from repro.errors import AdmissionError, ServiceError
from repro.service import (
    ServiceClient,
    ServiceClientError,
    ServiceConfig,
    ServiceThread,
)
from repro.service.rulebase import RuleBaseCache
from repro.service.session import SessionRegistry

PROGRAM = """
(literalize order id status)
(literalize shipped id)
(p ship-open
  (order ^id <i> ^status open)
  -(shipped ^id <i>)
  -->
  (make shipped ^id <i>))
"""


class TestCheckout:
    def _registry(self, tmp_path, **kwargs):
        return SessionRegistry(
            RuleBaseCache(), wal_root=str(tmp_path / "wal"),
            fsync="off", **kwargs,
        )

    def test_checked_out_session_blocks_the_sweeper(self, tmp_path):
        registry = self._registry(tmp_path, idle_ttl=0.0)
        registry.create("tenant", PROGRAM)
        session = registry.checkout("tenant")
        try:
            # idle_ttl 0 makes every idle session sweepable — but a
            # checked-out one is busy, whatever its age.
            assert registry.sweep_idle() == []
            assert "tenant" in registry
        finally:
            registry.checkin(session)
        assert registry.sweep_idle() == ["tenant"]
        assert "tenant" not in registry
        registry.close_all()

    def test_checkin_then_sweep_then_resume_intact(self, tmp_path):
        registry = self._registry(tmp_path, idle_ttl=0.0)
        session, _ = registry.create("tenant", PROGRAM)
        claim = registry.checkout("tenant")
        claim.ingest_facts([("order", {"id": 1, "status": "open"})])
        registry.checkin(claim)
        assert registry.sweep_idle() == ["tenant"]
        resumed, _ = registry.create("tenant", "", resume=True)
        assert resumed.resumed is True
        assert len(resumed.engine.wm) == 1
        registry.close_all()

    def test_checkout_missing_session(self, tmp_path):
        registry = self._registry(tmp_path)
        with pytest.raises(ServiceError) as info:
            registry.checkout("ghost")
        assert "no session named" in str(info.value)
        registry.close_all()

    def test_checkout_enforces_the_pending_cap(self, tmp_path):
        registry = self._registry(tmp_path)
        registry.create("tenant", PROGRAM)
        first = registry.checkout("tenant", max_pending=1)
        with pytest.raises(AdmissionError):
            registry.checkout("tenant", max_pending=1)
        registry.checkin(first)
        second = registry.checkout("tenant", max_pending=1)
        registry.checkin(second)
        registry.close_all()

    def test_lru_eviction_skips_busy_sessions(self, tmp_path):
        registry = self._registry(tmp_path, max_sessions=2)
        registry.create("old", PROGRAM)
        registry.create("new", PROGRAM)
        claim = registry.checkout("old")
        try:
            # "old" is LRU but busy: the evictor must pick "new".
            time.sleep(0.01)
            registry.checkout("new")  # touch, then release
            registry.checkin(registry.get("new"))
            registry.create("third", PROGRAM)
            assert "old" in registry
            assert "third" in registry
        finally:
            registry.checkin(claim)
        registry.close_all()


class TestLiveEvictionRace:
    def test_aggressive_sweeper_never_half_applies(self, tmp_path):
        """Hammer keyed asserts against a server whose sweeper evicts
        after ~50ms idle: every batch lands exactly once (resume +
        retry after each eviction), or fails retryably — never
        partially."""
        with ServiceThread(ServiceConfig(
            port=0, wal_root=str(tmp_path / "wal"), engine_workers=2,
            idle_ttl=0.05, sweep_interval=0.01,
        )) as thread:
            with ServiceClient(*thread.address, seed=3) as client:
                client.create(
                    "raced", PROGRAM, durable=True, retry=True,
                    idempotent=True,
                )
                applied = 0
                recoveries = 0
                for i in range(12):
                    # Each batch is two facts: a torn batch would leave
                    # an odd count behind.
                    batch = [
                        ("order", {"id": 2 * i, "status": "held"}),
                        ("order", {"id": 2 * i + 1, "status": "held"}),
                    ]
                    key = f"raced-a{i}"
                    for _attempt in range(6):
                        try:
                            response = client.assert_facts(
                                "raced", batch, retry=True, key=key,
                            )
                            assert response["ingested"] == 2
                            applied += 1
                            break
                        except ServiceClientError as error:
                            if error.code != "no_session":
                                raise
                            recoveries += 1
                            client.create(
                                "raced", "", resume=True, retry=True,
                                idempotent=True,
                            )
                    else:
                        pytest.fail("session never recovered")
                    # Let the sweeper win some races.
                    if i % 3 == 2:
                        time.sleep(0.08)
                assert applied == 12
                try:
                    response, _ = client.facts(
                        "raced", "order", retry=True,
                    )
                except ServiceClientError as error:
                    # The sweeper can win one more race before the
                    # final audit; resume and re-read.
                    if error.code != "no_session":
                        raise
                    client.create(
                        "raced", "", resume=True, retry=True,
                        idempotent=True,
                    )
                    response, _ = client.facts(
                        "raced", "order", retry=True,
                    )
                assert response["count"] == 24
                stats = client.stats()
                assert stats["registry"]["evicted_idle"] >= 1
                assert recoveries >= 1
