"""Reload-mid-stream differential: a served session whose rules are
hot-swapped between fact batches is *the same computation* — identical
firing sequence, derived facts, and byte-identical WAL — as the same
interleaving run in process.  And recovering the service-written WAL
reproduces that session exactly: same WM time tags, same rules, no
re-firings."""

from __future__ import annotations

import os

import pytest

from repro import RuleEngine
from repro.durability import DurabilityConfig
from repro.durability.wal import list_segments
from repro.service import ServiceClient, ServiceConfig, ServiceThread
from repro.service.protocol import fact_event, firing_event

PROGRAM = """
(literalize dept name)
(literalize emp name dept salary)
(literalize payroll dept total)
(p dept-payroll
  (dept ^name <d>)
  { [emp ^dept <d>] <staff> }
  :test ((count <staff>) >= 1)
  -(payroll ^dept <d>)
  -->
  (make payroll ^dept <d> ^total (sum <staff> ^salary))
  (write payroll <d> (sum <staff> ^salary)))
"""

HIGH_RULE = (
    "(p high-earner (emp ^name <n> ^salary {<s> > 250}) "
    "--> (write high <n> <s>))"
)

HIGH_V2 = (
    "(p high-earner (emp ^name <n> ^salary {<s> > 150}) "
    "--> (write high2 <n> <s>))"
)

#: One session script: fact batches, runs, and rule surgery interleaved.
STEPS = [
    ("facts", [("dept", {"name": "d0"}), ("dept", {"name": "d1"})]),
    ("run",),
    ("facts", [
        ("emp", {"name": "e0", "dept": "d0", "salary": 100}),
        ("emp", {"name": "e1", "dept": "d1", "salary": 200}),
        ("emp", {"name": "e2", "dept": "d0", "salary": 300}),
    ]),
    ("run",),
    ("add", HIGH_RULE),       # back-fills live WM: e2 qualifies
    ("run",),
    ("replace", "high-earner", HIGH_V2),
    ("run",),
    ("facts", [("emp", {"name": "e3", "dept": "d1", "salary": 400})]),
    ("run",),
    ("remove", "dept-payroll"),
    ("run",),
]


def _wal_bytes(wal_dir):
    return {
        os.path.basename(path): open(path, "rb").read()
        for _, path in list_segments(str(wal_dir))
    }


def _strip_ids(events):
    return [
        {k: v for k, v in event.items() if k != "id"} for event in events
    ]


@pytest.fixture
def embedded(tmp_path):
    """The reference: the same step script run in process."""
    wal_dir = tmp_path / "embedded"
    engine = RuleEngine(
        durability=DurabilityConfig(wal_dir, fsync="batch")
    )
    engine.load(PROGRAM)
    events = []
    fired_total = 0
    for step in STEPS:
        kind = step[0]
        if kind == "facts":
            engine.load_facts(step[1])
        elif kind == "add":
            engine.add_rule(step[1])
        elif kind == "replace":
            engine.replace_rule(step[1], step[2])
        elif kind == "remove":
            engine.excise(step[1])
        else:  # run
            derived = []
            engine.wm.attach(derived.append)
            fired_total += engine.run()
            engine.wm.detach(derived.append)
            for record in engine.tracer.firings:
                events.append(firing_event(None, record))
            for text in engine.tracer.output:
                events.append(
                    {"event": "write", "id": None, "text": text}
                )
            engine.tracer.firings.clear()
            engine.tracer.output.clear()
            for event in derived:
                events.append(fact_event(None, event.sign, event.wme))
    wm_state = sorted(
        (w.wme_class, w.time_tag, tuple(sorted(w.as_dict().items())))
        for w in engine.wm
    )
    rules = sorted(engine.rules)
    engine.close()
    return {
        "wal_dir": wal_dir,
        "events": _strip_ids(events),
        "fired": fired_total,
        "wm": wm_state,
        "rules": rules,
    }


def _drive_wire(client, session):
    events = []
    fired = 0
    for step in STEPS:
        kind = step[0]
        if kind == "facts":
            client.assert_facts(session, step[1])
        elif kind == "add":
            client.add_rule(session, step[1])
        elif kind == "replace":
            client.replace_rule(session, step[1], step[2])
        elif kind == "remove":
            client.remove_rule(session, step[1])
        else:
            response, lines = client.run(session)
            fired += response["fired"]
            events.extend(lines)
    return events, fired


def test_reload_mid_stream_is_byte_identical_to_embedded(
    tmp_path, embedded
):
    wal_root = tmp_path / "service"
    with ServiceThread(
        ServiceConfig(port=0, wal_root=str(wal_root))
    ) as server:
        with ServiceClient(*server.address) as client:
            client.create("diff", PROGRAM)
            wire_events, wire_fired = _drive_wire(client, "diff")
            _, fact_lines = client.facts("diff")
            client.close_session("diff")

    assert _strip_ids(wire_events) == embedded["events"]
    assert wire_fired == embedded["fired"]

    wire_wm = sorted(
        (e["class"], e["tag"], tuple(sorted(e["values"].items())))
        for e in fact_lines
    )
    assert wire_wm == embedded["wm"]

    # Byte-identical WALs: the wire surgery logged the same p/x/P
    # records at the same positions as the in-process run.
    wire_wal = _wal_bytes(wal_root / "diff")
    embedded_wal = _wal_bytes(embedded["wal_dir"])
    assert sorted(wire_wal) == sorted(embedded_wal)
    for name in embedded_wal:
        assert wire_wal[name] == embedded_wal[name], (
            f"segment {name} diverged between wire and embedded runs"
        )


def test_recovered_reloaded_session_matches_embedded(tmp_path, embedded):
    wal_root = tmp_path / "service"
    with ServiceThread(
        ServiceConfig(port=0, wal_root=str(wal_root))
    ) as server:
        with ServiceClient(*server.address) as client:
            client.create("diff", PROGRAM)
            _drive_wire(client, "diff")
            client.close_session("diff")

    engine = RuleEngine.recover(
        str(wal_root / "diff"), durability=False
    )
    assert sorted(
        (w.wme_class, w.time_tag, tuple(sorted(w.as_dict().items())))
        for w in engine.wm
    ) == embedded["wm"]
    # The surgery replayed: post-surgery rule set, and refraction
    # carried over — nothing re-fires.
    assert sorted(engine.rules) == embedded["rules"]
    assert engine.run() == 0
    engine.close()
