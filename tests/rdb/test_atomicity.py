"""Regression tests: atomic batches and all-or-nothing transactions.

Both bugs here shipped in earlier revisions and are pinned by these
tests:

* ``Table.insert_many`` used to insert row-by-row, so a schema
  violation mid-batch left every earlier row behind — the batch was
  observable half-applied.  It now normalises every row before any
  mutation and delegates to the storage layer's all-or-nothing
  ``insert_rows``.
* ``TransactionManager.validate_and_apply`` used to apply buffered
  operations directly to the tables, so a failure on the Nth operation
  (missing row, schema violation) left operations 1..N-1 committed and
  the transaction counted as neither committed nor aborted.  It now
  stages every effect against a scratch view first and only touches
  the tables once the whole batch is known to apply.

The sqlite backend is additionally held to statement-level atomicity
through fault injection: an injected sqlite error mid-batch must roll
the transaction back, leaving rows, ids, and indexes byte-identical.
"""

import pytest

from repro.errors import (
    SchemaError,
    StorageError,
    TransactionError,
)
from repro.rdb import Database, TransactionManager
from repro.rdb.memory_backend import MemoryBackend
from repro.rdb.sqlite_backend import SqliteBackend

BACKENDS = {
    "memory": MemoryBackend,
    "sqlite": SqliteBackend,
}


@pytest.fixture(params=sorted(BACKENDS))
def db(request):
    database = Database(BACKENDS[request.param]())
    yield database
    database.close()


def table_state(table):
    """Full observable state: (row_id, row) pairs in order."""
    return [(rid, dict(row)) for rid, row in table.storage.items()]


class TestInsertManyAtomicity:
    def test_schema_failure_mid_batch_inserts_nothing(self, db):
        table = db.create_table("t", ["a", "b"])
        table.insert_many([{"a": 1}, {"a": 2}])
        before = table_state(table)
        with pytest.raises(SchemaError):
            table.insert_many([{"a": 3}, {"zz": 4}, {"a": 5}])
        assert table_state(table) == before
        assert len(table) == 2

    def test_type_failure_mid_batch_inserts_nothing(self, db):
        from repro.rdb import Column, Schema

        schema = Schema([Column("a", "int")])
        table = db.create_table("t", schema)
        before = table_state(table)
        with pytest.raises(SchemaError):
            table.insert_many([{"a": 1}, {"a": "not-an-int"}])
        assert table_state(table) == before

    def test_failed_batch_does_not_consume_row_ids(self, db):
        table = db.create_table("t", ["a"])
        first = table.insert({"a": 1})
        with pytest.raises(SchemaError):
            table.insert_many([{"a": 2}, {"bad": 3}])
        assert table.insert({"a": 4}) == first + 1

    def test_failed_batch_leaves_indexes_intact(self, db):
        table = db.create_table("t", ["a"])
        table.create_index("a")
        table.insert_many([{"a": 1}, {"a": 2}])
        with pytest.raises(SchemaError):
            table.insert_many([{"a": 1}, {"oops": 9}])
        assert [row["a"] for row in table.lookup("a", 1)] == [1]
        assert len(table) == 2

    def test_successful_batch_is_visible_and_ordered(self, db):
        table = db.create_table("t", ["a"])
        ids = table.insert_many({"a": i} for i in range(5))
        assert ids == sorted(ids)
        assert [row["a"] for row in table.scan()] == list(range(5))

    def test_sql_insert_batch_is_atomic(self, db):
        """Multi-row INSERT through run_sql inherits the guarantee."""
        from repro.rdb.sql import run_sql

        table = db.create_table("t", ["a"])
        with pytest.raises(SchemaError):
            run_sql(db, "INSERT INTO t (a, zz) VALUES (1, 2), (3, 4)")
        assert len(table) == 0


class TestSqliteFaultInjection:
    """Statement-level faults must leave pre-batch state untouched."""

    @pytest.fixture
    def sqlite_db(self):
        backend = SqliteBackend()
        database = Database(backend)
        yield database, backend
        database.close()

    def test_fault_during_insert_batch_rolls_back(self, sqlite_db):
        db, backend = sqlite_db
        table = db.create_table("t", ["a"])
        table.insert_many([{"a": 1}, {"a": 2}])
        before = table_state(table)

        def fail_inserts(sql):
            if sql.lstrip().upper().startswith("INSERT INTO \"T\""):
                raise StorageError("injected device failure")

        backend.set_fault(fail_inserts)
        with pytest.raises(StorageError):
            table.insert_many([{"a": 3}, {"a": 4}])
        backend.set_fault(None)
        assert table_state(table) == before
        # The id counter did not advance either.
        assert table.insert({"a": 9}) == 3

    def test_fault_during_meta_update_rolls_back(self, sqlite_db):
        """Failing the id-counter UPDATE (after the INSERT succeeded)
        still reverts the whole batch."""
        db, backend = sqlite_db
        table = db.create_table("t", ["a"])
        before = table_state(table)

        def fail_meta(sql):
            if sql.lstrip().upper().startswith("UPDATE \"__REPRO_META__\""):
                raise StorageError("injected failure in meta update")

        backend.set_fault(fail_meta)
        with pytest.raises(StorageError):
            table.insert_many([{"a": 1}, {"a": 2}])
        backend.set_fault(None)
        assert table_state(table) == before
        assert len(table) == 0

    def test_fault_during_delete_in_rolls_back(self, sqlite_db):
        db, backend = sqlite_db
        table = db.create_table("t", ["a"])
        table.insert_many([{"a": i} for i in range(6)])
        before = table_state(table)
        calls = []

        def fail_second_delete(sql):
            if sql.lstrip().upper().startswith("DELETE"):
                calls.append(sql)
                if len(calls) >= 2:
                    raise StorageError("injected failure")

        backend.set_fault(fail_second_delete)
        with pytest.raises(StorageError):
            # Mixed NULL + values forces two DELETE statements in one
            # transaction; the second one faults.
            table.delete_in("a", [0, 1, None])
        backend.set_fault(None)
        assert table_state(table) == before

    def test_rejects_unstorable_values_before_writing(self, sqlite_db):
        db, backend = sqlite_db
        table = db.create_table("t", ["a"])
        before = table_state(table)
        with pytest.raises(StorageError):
            table.insert_many([{"a": 1}, {"a": [1, 2]}])
        with pytest.raises(StorageError):
            table.insert({"a": True})
        assert table_state(table) == before


class TestTransactionApplyAtomicity:
    @pytest.fixture
    def setup(self, db):
        table = db.create_table("t", ["v"])
        ids = [table.insert({"v": value}) for value in range(3)]
        return table, ids, TransactionManager()

    def test_missing_row_aborts_whole_transaction(self, setup):
        table, ids, manager = setup
        txn = manager.begin()
        txn.update(table, ids[0], {"v": 99})
        txn.update(table, 999, {"v": 1})  # no such row
        with pytest.raises(TransactionError):
            txn.commit()
        # The first update must NOT have leaked through.
        assert table.get(ids[0])["v"] == 0
        assert manager.stats() == {"commits": 0, "aborts": 1}

    def test_delete_of_missing_row_aborts_wholesale(self, setup):
        table, ids, manager = setup
        txn = manager.begin()
        txn.insert(table, {"v": 42})
        txn.delete(table, 999)
        with pytest.raises(TransactionError):
            txn.commit()
        assert len(table) == 3
        assert manager.stats()["aborts"] == 1

    def test_schema_violation_aborts_wholesale(self, setup):
        table, ids, manager = setup
        txn = manager.begin()
        txn.update(table, ids[0], {"v": 99})
        txn.insert(table, {"nonexistent": 1})
        with pytest.raises(SchemaError):
            txn.commit()
        assert table.get(ids[0])["v"] == 0
        assert len(table) == 3
        assert manager.stats()["aborts"] == 1

    def test_aborted_apply_cannot_be_retried(self, setup):
        table, ids, manager = setup
        txn = manager.begin()
        txn.update(table, 999, {"v": 1})
        with pytest.raises(TransactionError):
            txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()  # txn is aborted, not retriable

    def test_aborted_apply_does_not_poison_later_txns(self, setup):
        table, ids, manager = setup
        bad = manager.begin()
        bad.update(table, 999, {"v": 1})
        with pytest.raises(TransactionError):
            bad.commit()
        good = manager.begin()
        good.update(table, ids[1], {"v": 7})
        good.commit()
        assert table.get(ids[1])["v"] == 7
        assert manager.stats() == {"commits": 1, "aborts": 1}

    def test_staged_apply_sees_own_inserts_deletes(self, setup):
        table, ids, manager = setup
        txn = manager.begin()
        txn.delete(table, ids[2])
        txn.update(table, ids[0], {"v": 5})
        txn.commit()
        assert table.get(ids[2]) is None
        assert table.get(ids[0])["v"] == 5

    def test_update_after_delete_in_same_txn_aborts(self, setup):
        table, ids, manager = setup
        txn = manager.begin()
        txn.delete(table, ids[0])
        txn.update(table, ids[0], {"v": 5})
        with pytest.raises(TransactionError):
            txn.commit()
        assert table.get(ids[0])["v"] == 0  # delete rolled back too
        assert manager.stats()["aborts"] == 1
