"""Unit tests for the mini SQL dialect."""

import pytest

from repro.errors import SqlError
from repro.rdb import Database, run_sql


@pytest.fixture
def db():
    database = Database()
    run_sql(
        database,
        "CREATE TABLE emp (name str, dept str, salary int)",
    )
    run_sql(
        database,
        "INSERT INTO emp (name, dept, salary) VALUES "
        "('ann', 'eng', 120), ('bob', 'eng', 100), "
        "('cat', 'ops', 90), ('dan', 'ops', NULL)",
    )
    return database


class TestSelect:
    def test_select_star(self, db):
        assert len(run_sql(db, "SELECT * FROM emp")) == 4

    def test_projection_and_alias(self, db):
        rows = run_sql(db, "SELECT name AS who FROM emp WHERE salary > 95")
        assert [r["who"] for r in rows] == ["ann", "bob"]

    def test_where_connectives(self, db):
        rows = run_sql(
            db,
            "SELECT name FROM emp "
            "WHERE dept = 'eng' AND NOT (salary < 110)",
        )
        assert [r["name"] for r in rows] == ["ann"]

    def test_is_null(self, db):
        rows = run_sql(db, "SELECT name FROM emp WHERE salary IS NULL")
        assert [r["name"] for r in rows] == ["dan"]
        rows = run_sql(
            db, "SELECT name FROM emp WHERE salary IS NOT NULL"
        )
        assert len(rows) == 3

    def test_group_by_with_aggregates(self, db):
        rows = run_sql(
            db,
            "SELECT dept, COUNT(*) AS n, SUM(salary) AS total "
            "FROM emp GROUP BY dept",
        )
        by_dept = {r["dept"]: r for r in rows}
        assert by_dept["eng"]["n"] == 2
        assert by_dept["ops"]["total"] == 90

    def test_having(self, db):
        rows = run_sql(
            db,
            "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept "
            "HAVING n > 1",
        )
        assert len(rows) == 2

    def test_collect_aggregate(self, db):
        rows = run_sql(
            db,
            "SELECT dept, COLLECT(name) AS names FROM emp GROUP BY dept",
        )
        by_dept = {r["dept"]: r["names"] for r in rows}
        assert by_dept["eng"] == ["ann", "bob"]

    def test_order_and_limit(self, db):
        rows = run_sql(
            db, "SELECT name FROM emp ORDER BY salary DESC LIMIT 2"
        )
        assert [r["name"] for r in rows] == ["ann", "bob"]

    def test_distinct(self, db):
        rows = run_sql(db, "SELECT DISTINCT dept FROM emp")
        assert len(rows) == 2

    def test_join_with_aliases(self, db):
        run_sql(db, "CREATE TABLE loc (dept str, floor int)")
        run_sql(
            db,
            "INSERT INTO loc (dept, floor) VALUES ('eng', 3), ('ops', 1)",
        )
        rows = run_sql(
            db,
            "SELECT e.name, l.floor FROM emp e, loc l "
            "WHERE e.dept = l.dept AND l.floor = 3",
        )
        assert {r["e.name"] for r in rows} == {"ann", "bob"}

    def test_aggregate_without_group_by(self, db):
        [row] = run_sql(db, "SELECT AVG(salary) AS a FROM emp")
        assert abs(row["a"] - (120 + 100 + 90) / 3) < 1e-9

    def test_bare_column_with_global_aggregate_rejected(self, db):
        with pytest.raises(SqlError):
            run_sql(db, "SELECT name, COUNT(*) AS n FROM emp")


class TestDml:
    def test_update(self, db):
        count = run_sql(
            db, "UPDATE emp SET salary = 95 WHERE dept = 'ops'"
        )
        assert count == 2
        rows = run_sql(db, "SELECT name FROM emp WHERE salary = 95")
        assert len(rows) == 2

    def test_delete(self, db):
        assert run_sql(db, "DELETE FROM emp WHERE dept = 'eng'") == 2
        assert len(run_sql(db, "SELECT * FROM emp")) == 2

    def test_delete_all(self, db):
        run_sql(db, "DELETE FROM emp")
        assert run_sql(db, "SELECT * FROM emp") == []

    def test_insert_arity_checked(self, db):
        with pytest.raises(SqlError):
            run_sql(db, "INSERT INTO emp (name, dept) VALUES ('x')")


class TestDdlAndLexical:
    def test_create_with_types_and_not_null(self):
        db = Database()
        table = run_sql(
            db, "CREATE TABLE t (a int NOT NULL, b text, c)"
        )
        assert not table.schema.column("a").nullable
        assert table.schema.column("b").type == "str"

    def test_drop(self, db):
        run_sql(db, "DROP TABLE emp")
        assert not db.has_table("emp")

    def test_quoted_identifiers(self):
        db = Database()
        run_sql(db, 'CREATE TABLE "COND-E" (wme_tag int)')
        run_sql(db, 'INSERT INTO "COND-E" (wme_tag) VALUES (1)')
        rows = run_sql(db, 'SELECT * FROM "COND-E"')
        assert rows == [{"wme_tag": 1}]

    def test_string_escaping(self, db):
        run_sql(
            db,
            "INSERT INTO emp (name, dept, salary) "
            "VALUES ('o''brien', 'eng', 1)",
        )
        rows = run_sql(db, "SELECT name FROM emp WHERE salary = 1")
        assert rows[0]["name"] == "o'brien"

    def test_keywords_case_insensitive(self, db):
        rows = run_sql(db, "select name from emp where dept = 'eng'")
        assert len(rows) == 2

    def test_tokenizer_error(self, db):
        with pytest.raises(SqlError):
            run_sql(db, "SELECT @ FROM emp")

    def test_parse_error_messages(self, db):
        with pytest.raises(SqlError):
            run_sql(db, "SELECT FROM emp")
        with pytest.raises(SqlError):
            run_sql(db, "FROBNICATE emp")
