"""The StorageBackend contract, held against both implementations.

Every guarantee in :mod:`repro.rdb.backend`'s module docstring is
pinned here for the memory and sqlite backends alike, so a third
backend can be dropped in and qualified by running this file.
"""

import pytest

from repro.errors import StorageError
from repro.rdb import Database, Schema
from repro.rdb.backend import (
    BACKEND_ENV,
    backend_named,
    resolve_backend,
)
from repro.rdb.memory_backend import MemoryBackend
from repro.rdb.sqlite_backend import SqliteBackend

BACKENDS = {
    "memory": MemoryBackend,
    "sqlite": SqliteBackend,
}


@pytest.fixture(params=sorted(BACKENDS))
def backend(request):
    instance = BACKENDS[request.param]()
    yield instance
    instance.close()


@pytest.fixture
def storage(backend):
    return backend.create_table_storage("t", Schema(["a", "b"]))


class TestRowIds:
    def test_ids_are_monotone_from_one(self, storage):
        ids = storage.insert_rows([{"a": i, "b": None} for i in range(4)])
        assert ids == [1, 2, 3, 4]

    def test_ids_never_reused_after_delete(self, storage):
        storage.insert_rows([{"a": 1, "b": None}])
        storage.delete_row(1)
        assert storage.insert_rows([{"a": 2, "b": None}]) == [2]

    def test_ids_never_reused_after_clear(self, storage):
        storage.insert_rows([{"a": i, "b": None} for i in range(3)])
        storage.clear()
        assert storage.count() == 0
        assert storage.insert_rows([{"a": 9, "b": None}]) == [4]


class TestReads:
    def test_items_in_row_id_order(self, storage):
        storage.insert_rows([{"a": i, "b": None} for i in range(5)])
        storage.delete_row(2)
        assert [rid for rid, _ in storage.items()] == [1, 3, 4, 5]
        assert [row["a"] for _, row in storage.items()] == [0, 2, 3, 4]

    def test_lookup_in_row_id_order(self, storage):
        storage.insert_rows(
            [{"a": i % 2, "b": i} for i in range(6)]
        )
        assert [row["b"] for row in storage.lookup("a", 0)] == [0, 2, 4]

    def test_lookup_null(self, storage):
        storage.insert_rows(
            [{"a": None, "b": 1}, {"a": 5, "b": 2}, {"a": None, "b": 3}]
        )
        assert [row["b"] for row in storage.lookup("a", None)] == [1, 3]

    def test_get_missing_is_none(self, storage):
        assert storage.get(42) is None


class TestIndexes:
    def test_index_view_lookup(self, storage):
        storage.create_index("a")
        storage.insert_rows([{"a": i % 2, "b": i} for i in range(4)])
        view = storage.index_view("a")
        assert view.lookup(1) == {2, 4}
        assert sorted(view.distinct_values()) == [0, 1]
        assert len(view) == 4

    def test_index_null_values(self, storage):
        storage.create_index("a")
        storage.insert_rows([{"a": None, "b": 1}, {"a": 2, "b": 2}])
        assert storage.index_view("a").lookup(None) == {1}

    def test_index_follows_mutation(self, storage):
        storage.create_index("a")
        ids = storage.insert_rows([{"a": 1, "b": 1}, {"a": 1, "b": 2}])
        storage.delete_row(ids[0])
        storage.replace(ids[1], {"a": 3, "b": 2})
        view = storage.index_view("a")
        assert view.lookup(1) == set()
        assert view.lookup(3) == {ids[1]}

    def test_indexed_columns(self, storage):
        assert storage.indexed_columns() == []
        storage.create_index("b")
        storage.create_index("a")
        assert storage.indexed_columns() == ["a", "b"]


class TestBatchDelete:
    def test_delete_in_values(self, storage):
        storage.insert_rows([{"a": i, "b": None} for i in range(6)])
        assert storage.delete_in("a", [1, 3, 99]) == 2
        assert [row["a"] for _, row in storage.items()] == [0, 2, 4, 5]

    def test_delete_in_with_null(self, storage):
        storage.insert_rows(
            [{"a": None, "b": 1}, {"a": 2, "b": 2}, {"a": 3, "b": 3}]
        )
        assert storage.delete_in("a", [None, 3]) == 2
        assert [row["b"] for _, row in storage.items()] == [2]

    def test_delete_in_empty_values(self, storage):
        storage.insert_rows([{"a": 1, "b": None}])
        assert storage.delete_in("a", []) == 0
        assert storage.count() == 1

    def test_delete_in_many_values_chunks(self, storage):
        """More values than one statement's parameter budget."""
        storage.insert_rows([{"a": i, "b": None} for i in range(50)])
        assert storage.delete_in("a", list(range(2000))) == 50
        assert storage.count() == 0


class TestBackendRegistry:
    def test_backend_named_specs(self):
        assert isinstance(backend_named("memory"), MemoryBackend)
        sqlite = backend_named("sqlite")
        assert isinstance(sqlite, SqliteBackend)
        assert sqlite.spec == "sqlite"
        sqlite.close()

    def test_backend_named_sqlite_path(self, tmp_path):
        path = str(tmp_path / "db.sqlite3")
        backend = backend_named(f"sqlite:{path}")
        assert backend.spec == f"sqlite:{path}"
        backend.create_table_storage("t", Schema(["a"]))
        backend.close()
        assert (tmp_path / "db.sqlite3").exists()

    def test_backend_named_unknown(self):
        with pytest.raises(StorageError):
            backend_named("oracle")

    def test_resolve_passthrough_and_env(self, monkeypatch):
        instance = MemoryBackend()
        assert resolve_backend(instance) is instance
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert isinstance(resolve_backend(None), MemoryBackend)
        monkeypatch.setenv(BACKEND_ENV, "sqlite")
        resolved = resolve_backend(None)
        assert isinstance(resolved, SqliteBackend)
        resolved.close()

    def test_resolve_rejects_junk(self):
        with pytest.raises(StorageError):
            resolve_backend(42)

    def test_database_accepts_spec_string(self):
        db = Database("sqlite")
        assert isinstance(db.backend, SqliteBackend)
        db.close()


class TestSqliteBackup:
    def test_serialize_restore_round_trip(self):
        source = SqliteBackend()
        db = Database(source)
        table = db.create_table("t", ["a"])
        table.create_index("a")
        table.insert_many([{"a": i} for i in range(4)])
        table.delete(2)
        data = db.backend.serialize()

        target_backend = SqliteBackend()
        target = Database(target_backend)
        clone = target.create_table("t", ["a"])
        target_backend.restore(data)
        assert clone.scan() == table.scan()
        # The id counter travelled with the backup: no reuse.
        assert clone.insert({"a": 9}) == table.insert({"a": 9})
        db.close()
        target.close()

    def test_memory_backend_has_no_backup(self):
        backend = MemoryBackend()
        assert not backend.supports_file_backup
        with pytest.raises(StorageError):
            backend.serialize()
        with pytest.raises(StorageError):
            backend.restore(b"")

    def test_file_backed_database_persists(self, tmp_path):
        path = str(tmp_path / "out.db")
        db = Database(f"sqlite:{path}")
        db.create_table("t", ["a"]).insert_many([{"a": 1}, {"a": 2}])
        db.close()
        reopened = Database(f"sqlite:{path}")
        # A fresh create_table drops stale homonyms: out-of-core reuse
        # goes through restore()/recovery, not implicit table adoption.
        table = reopened.create_table("t", ["a"])
        assert len(table) == 0
        reopened.close()


class TestDropTable:
    def test_drop_and_recreate(self, backend):
        db = Database(backend)
        table = db.create_table("t", ["a"])
        table.insert({"a": 1})
        db.drop_table("t")
        fresh = db.create_table("t", ["a"])
        assert len(fresh) == 0
        assert fresh.insert({"a": 2}) == 1
