"""Differential tests: native sqlite pushdown vs the interpreter.

Every query in the battery runs twice — against a memory-backed
database (the reference tree-walking interpreter) and against a
sqlite-backed one (where :mod:`repro.rdb.pushdown` renders it to real
SQL when it can) — and the results must be *identical*, rows and
order.  Queries the renderer declines (HAVING, ambiguous columns, …)
fall back to the interpreter on the sqlite backend, so they are
included too: the fallback seam must be invisible.
"""

import pytest

from repro.errors import DatabaseError
from repro.rdb import Database
from repro.rdb.memory_backend import MemoryBackend
from repro.rdb.pushdown import build_select
from repro.rdb.sql import parse_sql, run_sql
from repro.rdb.sqlite_backend import SqliteBackend

PLAYERS = [
    ("Jack", "A", 10, 3),
    ("Janice", "A", 7, None),
    ("Sue", "B", 10, 1),
    ("Jack", "B", 2, None),
    ("Sue", "B", 5, 2),
    ("Ann", "C", None, 4),
]

TEAMS = [
    ("A", "east"),
    ("B", "west"),
    ("C", None),
]


def populate(db):
    players = db.create_table("player", ["name", "team", "score", "rank"])
    players.create_index("team")
    players.insert_many(
        {"name": n, "team": t, "score": s, "rank": r}
        for n, t, s, r in PLAYERS
    )
    teams = db.create_table("team", ["id", "coast"])
    teams.insert_many({"id": i, "coast": c} for i, c in TEAMS)
    return db


@pytest.fixture
def pair():
    memory = populate(Database(MemoryBackend()))
    sqlite = populate(Database(SqliteBackend()))
    yield memory, sqlite
    memory.close()
    sqlite.close()


#: (sql, expect_native) — expect_native pins which side of the
#: pushdown/fallback seam each query exercises, so a renderer
#: regression cannot silently turn the whole battery into
#: interpreter-vs-interpreter.
SELECTS = [
    ("SELECT * FROM player", True),
    ("SELECT name, score FROM player WHERE team = 'B'", True),
    ("SELECT name FROM player WHERE score > 5 AND team != 'A'", True),
    ("SELECT name FROM player WHERE score IS NULL", True),
    ("SELECT name FROM player WHERE rank IS NOT NULL", True),
    ("SELECT name FROM player WHERE team = 'A' OR score = 5", True),
    ("SELECT name FROM player WHERE NOT (team = 'B')", True),
    ("SELECT DISTINCT team FROM player", True),
    ("SELECT DISTINCT name FROM player ORDER BY name", True),
    ("SELECT name FROM player ORDER BY score DESC, name ASC", True),
    ("SELECT name FROM player ORDER BY player.rank", True),
    ("SELECT name FROM player LIMIT 3", True),
    ("SELECT name FROM player WHERE team = 'B' ORDER BY name LIMIT 2",
     True),
    ("SELECT COUNT(*) AS n FROM player", True),
    ("SELECT COUNT(score) AS n FROM player", True),
    ("SELECT COUNT(DISTINCT name) AS n FROM player", True),
    ("SELECT SUM(score) AS total, AVG(score) AS mean FROM player", True),
    ("SELECT MIN(score) AS lo, MAX(score) AS hi FROM player", True),
    ("SELECT SUM(score) AS total FROM player WHERE team = 'Z'", True),
    ("SELECT team, COUNT(*) AS n FROM player GROUP BY team", True),
    ("SELECT team, SUM(score) AS total FROM player "
     "GROUP BY team ORDER BY team", True),
    ("SELECT team, COUNT(*) AS n FROM player "
     "GROUP BY team ORDER BY n DESC, team", True),
    ("SELECT COLLECT(name) AS names FROM player GROUP BY team", True),
    ("SELECT COLLECT(DISTINCT name) AS names, COUNT(*) AS n "
     "FROM player GROUP BY team", True),
    ("SELECT p.name, t.coast FROM player AS p, team AS t "
     "WHERE p.team = t.id", True),
    ("SELECT p.name FROM player AS p, team AS t "
     "WHERE p.team = t.id AND t.coast = 'west' ORDER BY p.name", True),
    ("SELECT a.name FROM player AS a, player AS b "
     "WHERE a.name = b.name AND a.team < b.team", True),
    # -- interpreter-fallback territory --------------------------------
    ("SELECT team FROM player GROUP BY team HAVING team != 'A'", False),
    ("SELECT * FROM player AS p, team AS t WHERE p.team = t.id", False),
    ("SELECT name FROM player LIMIT -1", False),
]


def native_side(sqlite_db, sql):
    """Whether the renderer accepts *sql* (None means fallback)."""
    kind, spec = parse_sql(sql)
    assert kind == "select"
    rendered = build_select(sqlite_db, spec)
    return rendered is not None


class TestSelectDifferential:
    @pytest.mark.parametrize(
        "sql,expect_native", SELECTS, ids=[s for s, _ in SELECTS]
    )
    def test_same_rows_same_order(self, pair, sql, expect_native):
        memory, sqlite = pair
        assert native_side(sqlite, sql) == expect_native
        assert run_sql(memory, sql) == run_sql(sqlite, sql)

    def test_error_parity_unknown_table(self, pair):
        errors = []
        for db in pair:
            with pytest.raises(DatabaseError) as info:
                run_sql(db, "SELECT * FROM nope")
            errors.append(type(info.value))
        assert errors[0] is errors[1]

    def test_error_parity_unknown_column(self, pair):
        errors = []
        for db in pair:
            with pytest.raises(DatabaseError) as info:
                run_sql(db, "SELECT zz FROM player")
            errors.append(type(info.value))
        assert errors[0] is errors[1]


DML = [
    "UPDATE player SET score = 0 WHERE team = 'B'",
    "UPDATE player SET rank = NULL WHERE score IS NULL",
    "UPDATE player SET team = 'Z'",
    "UPDATE player SET score = 1 WHERE team = 'missing'",
    "DELETE FROM player WHERE score IS NULL",
    "DELETE FROM player WHERE team = 'A' OR rank = 1",
    "DELETE FROM player",
]


class TestDmlDifferential:
    @pytest.mark.parametrize("sql", DML)
    def test_same_count_same_table(self, pair, sql):
        memory, sqlite = pair
        assert run_sql(memory, sql) == run_sql(sqlite, sql)
        assert (run_sql(memory, "SELECT * FROM player")
                == run_sql(sqlite, "SELECT * FROM player"))

    def test_insert_then_query(self, pair):
        memory, sqlite = pair
        stmt = ("INSERT INTO player (name, team, score, rank) "
                "VALUES ('Zoe', 'D', 1, NULL), ('Yan', 'D', 2, 9)")
        assert run_sql(memory, stmt) == run_sql(sqlite, stmt)
        probe = "SELECT name, rank FROM player WHERE team = 'D'"
        assert run_sql(memory, probe) == run_sql(sqlite, probe)


class TestPushdownInternals:
    def test_params_not_inlined(self, pair):
        """String literals travel as bound parameters, not SQL text."""
        _, sqlite = pair
        kind, spec = parse_sql(
            "SELECT name FROM player WHERE team = 'B''; DROP TABLE x'"
        )
        rendered = build_select(sqlite, spec)
        assert rendered is not None
        sql_text, params = rendered[0], rendered[1]
        assert "DROP TABLE" not in sql_text
        assert any("DROP TABLE" in str(p) for p in params)

    def test_stats_count_native_statements(self, pair):
        _, sqlite = pair
        before = sqlite.backend.statements_pushed
        run_sql(sqlite, "SELECT name FROM player WHERE team = 'A'")
        assert sqlite.backend.statements_pushed == before + 1
