"""Unit tests for schemas, tables, and indexes."""

import pytest

from repro.errors import SchemaError
from repro.rdb import Column, Database, Schema, Table


class TestSchema:
    def test_column_types(self):
        Column("n", "int").check(3)
        Column("n", "number").check(3.5)
        Column("s", "str").check("x")
        with pytest.raises(SchemaError):
            Column("n", "int").check("3")
        with pytest.raises(SchemaError):
            Column("n", "int").check(True)  # bools are not ints here

    def test_not_null(self):
        with pytest.raises(SchemaError):
            Column("n", "int", nullable=False).check(None)
        Column("n", "int").check(None)

    def test_unknown_type(self):
        with pytest.raises(SchemaError):
            Column("n", "blob")

    def test_duplicate_columns(self):
        with pytest.raises(SchemaError):
            Schema(["a", "a"])

    def test_normalise_fills_nulls(self):
        schema = Schema(["a", "b"])
        assert schema.normalise({"a": 1}) == {"a": 1, "b": None}
        with pytest.raises(SchemaError):
            schema.normalise({"zz": 1})


class TestTable:
    def test_insert_get_delete(self):
        table = Table("t", ["a", "b"])
        row_id = table.insert({"a": 1, "b": "x"})
        assert table.get(row_id) == {"a": 1, "b": "x"}
        removed = table.delete(row_id)
        assert removed["a"] == 1
        assert table.get(row_id) is None
        with pytest.raises(SchemaError):
            table.delete(row_id)

    def test_update(self):
        table = Table("t", ["a", "b"])
        row_id = table.insert({"a": 1})
        table.update(row_id, {"b": "y"})
        assert table.get(row_id) == {"a": 1, "b": "y"}
        with pytest.raises(SchemaError):
            table.update(999, {"a": 0})

    def test_scan_returns_copies(self):
        table = Table("t", ["a"])
        table.insert({"a": 1})
        table.scan()[0]["a"] = 99
        assert table.scan()[0]["a"] == 1

    def test_select_and_delete_where(self):
        table = Table("t", ["a"])
        for value in range(6):
            table.insert({"a": value})
        assert len(table.select(lambda r: r["a"] % 2 == 0)) == 3
        assert table.delete_where(lambda r: r["a"] > 3) == 2
        assert len(table) == 4


class TestIndexes:
    def test_lookup_via_index(self):
        table = Table("t", ["a", "b"])
        table.create_index("a")
        for value in (1, 2, 1, 3):
            table.insert({"a": value})
        assert len(table.lookup("a", 1)) == 2
        assert table.lookup("a", 99) == []

    def test_index_tracks_updates_and_deletes(self):
        table = Table("t", ["a"])
        index = table.create_index("a")
        row_id = table.insert({"a": 1})
        table.update(row_id, {"a": 2})
        assert index.lookup(1) == set()
        assert index.lookup(2) == {row_id}
        table.delete(row_id)
        assert index.lookup(2) == set()

    def test_index_on_existing_rows(self):
        table = Table("t", ["a"])
        for value in (5, 5, 6):
            table.insert({"a": value})
        index = table.create_index("a")
        assert len(index.lookup(5)) == 2

    def test_null_values_indexed(self):
        table = Table("t", ["a"])
        table.create_index("a")
        row_id = table.insert({})
        assert row_id in {
            rid for rid in table.index_on("a").lookup(None)
        }

    def test_lookup_without_index_scans(self):
        table = Table("t", ["a"])
        table.insert({"a": 7})
        assert len(table.lookup("a", 7)) == 1

    def test_index_unknown_column(self):
        table = Table("t", ["a"])
        with pytest.raises(SchemaError):
            table.create_index("zz")


class TestDatabase:
    def test_create_and_drop(self):
        db = Database()
        db.create_table("t", ["a"])
        assert db.has_table("t")
        assert "t" in db
        with pytest.raises(SchemaError):
            db.create_table("t", ["a"])
        db.drop_table("t")
        assert not db.has_table("t")
        with pytest.raises(SchemaError):
            db.table("t")
