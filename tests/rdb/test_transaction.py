"""Unit tests for optimistic transactions."""

import pytest

from repro.errors import TransactionConflict, TransactionError
from repro.rdb import Database, TransactionManager


@pytest.fixture
def setup():
    db = Database()
    table = db.create_table("t", ["v"])
    ids = [table.insert({"v": value}) for value in range(5)]
    return table, ids, TransactionManager()


class TestBasicLifecycle:
    def test_commit_applies_buffered_writes(self, setup):
        table, ids, manager = setup
        txn = manager.begin()
        txn.update(table, ids[0], {"v": 99})
        txn.insert(table, {"v": 42})
        txn.delete(table, ids[1])
        assert table.get(ids[0])["v"] == 0  # nothing applied yet
        txn.commit()
        assert table.get(ids[0])["v"] == 99
        assert table.get(ids[1]) is None
        assert len(table) == 5
        assert txn.committed

    def test_abort_discards(self, setup):
        table, ids, manager = setup
        txn = manager.begin()
        txn.update(table, ids[0], {"v": 99})
        txn.abort()
        assert table.get(ids[0])["v"] == 0
        with pytest.raises(TransactionError):
            txn.commit()

    def test_operations_after_outcome_rejected(self, setup):
        table, ids, manager = setup
        txn = manager.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.read(table, ids[0])


class TestConflictDetection:
    def test_write_write_conflict(self, setup):
        table, ids, manager = setup
        first = manager.begin()
        second = manager.begin()
        first.update(table, ids[0], {"v": 1})
        second.update(table, ids[0], {"v": 2})
        first.commit()
        with pytest.raises(TransactionConflict):
            second.commit()
        assert table.get(ids[0])["v"] == 1

    def test_read_write_conflict(self, setup):
        table, ids, manager = setup
        reader = manager.begin()
        writer = manager.begin()
        reader.read(table, ids[0])
        reader.update(table, ids[1], {"v": 9})
        writer.update(table, ids[0], {"v": 5})
        writer.commit()
        with pytest.raises(TransactionConflict):
            reader.commit()

    def test_disjoint_transactions_both_commit(self, setup):
        table, ids, manager = setup
        first = manager.begin()
        second = manager.begin()
        first.update(table, ids[0], {"v": 1})
        second.update(table, ids[1], {"v": 2})
        first.commit()
        second.commit()
        assert manager.stats() == {"commits": 2, "aborts": 0}

    def test_later_transaction_sees_committed_state(self, setup):
        table, ids, manager = setup
        first = manager.begin()
        first.update(table, ids[0], {"v": 1})
        first.commit()
        second = manager.begin()  # begins after the commit
        second.read(table, ids[0])
        second.update(table, ids[0], {"v": 2})
        second.commit()
        assert table.get(ids[0])["v"] == 2

    def test_scan_records_reads(self, setup):
        table, ids, manager = setup
        scanner = manager.begin()
        rows = scanner.scan(table, lambda row: row["v"] >= 3)
        assert len(rows) == 2
        assert len(scanner.read_set) == 5  # every row was examined
        writer = manager.begin()
        writer.update(table, ids[0], {"v": -1})
        writer.commit()
        with pytest.raises(TransactionConflict):
            scanner.commit()
