"""Unit tests for the plan optimiser (hash joins, filter pushdown)."""

import pytest

from repro.rdb import (
    ColumnRef,
    Comparison,
    Database,
    Filter,
    HashJoin,
    Join,
    Literal,
    LogicalAnd,
    Scan,
    execute_plan,
    optimize,
    run_sql,
)


@pytest.fixture
def db():
    database = Database()
    emp = database.create_table("emp", ["name", "dept", "salary"])
    dept = database.create_table("dept", ["dept", "floor"])
    for name, d, salary in [
        ("ann", "eng", 120), ("bob", "eng", 100),
        ("cat", "ops", 90), ("dan", None, 50),
    ]:
        emp.insert({"name": name, "dept": d, "salary": salary})
    for d, floor in [("eng", 3), ("ops", 1), ("mgmt", 9)]:
        dept.insert({"dept": d, "floor": floor})
    return database


def col(name, qualifier):
    return ColumnRef(name, qualifier)


class TestRewrites:
    def test_equi_join_becomes_hash_join(self, db):
        plan = Join(
            Scan("emp"),
            Scan("dept"),
            Comparison("=", col("dept", "emp"), col("dept", "dept")),
        )
        optimized = optimize(plan)
        assert isinstance(optimized, HashJoin)

    def test_swapped_sides_handled(self, db):
        plan = Join(
            Scan("emp"),
            Scan("dept"),
            Comparison("=", col("dept", "dept"), col("dept", "emp")),
        )
        optimized = optimize(plan)
        assert isinstance(optimized, HashJoin)
        assert optimized.left_key.qualifier == "emp"

    def test_filter_pushdown_below_join(self, db):
        plan = Filter(
            Join(Scan("emp"), Scan("dept")),
            LogicalAnd(
                Comparison("=", col("dept", "emp"), col("dept", "dept")),
                Comparison(">", col("salary", "emp"), Literal(95)),
            ),
        )
        optimized = optimize(plan)
        assert isinstance(optimized, HashJoin)
        # The salary conjunct moved below the join, onto the emp side.
        assert isinstance(optimized.left, Filter)

    def test_non_equi_join_stays_nested_loop(self, db):
        plan = Join(
            Scan("emp"),
            Scan("dept"),
            Comparison(">", col("salary", "emp"), col("floor", "dept")),
        )
        optimized = optimize(plan)
        assert isinstance(optimized, Join)


class TestEquivalence:
    CASES = [
        Join(
            Scan("emp"),
            Scan("dept"),
            Comparison("=", col("dept", "emp"), col("dept", "dept")),
        ),
        Filter(
            Join(Scan("emp"), Scan("dept")),
            LogicalAnd(
                Comparison("=", col("dept", "emp"), col("dept", "dept")),
                Comparison(">=", col("floor", "dept"), Literal(2)),
            ),
        ),
        Join(Scan("emp"), Scan("dept")),  # cross join, no condition
    ]

    @pytest.mark.parametrize("plan", CASES)
    def test_optimized_plan_same_rows(self, db, plan):
        def canon(rows):
            return sorted(
                tuple(sorted((k, repr(v)) for k, v in row.items()))
                for row in rows
            )

        assert canon(execute_plan(plan, db)) == canon(
            execute_plan(optimize(plan), db)
        )

    def test_null_keys_never_join(self, db):
        plan = optimize(
            Join(
                Scan("emp"),
                Scan("dept"),
                Comparison("=", col("dept", "emp"), col("dept", "dept")),
            )
        )
        rows = execute_plan(plan, db)
        assert all(row["emp.name"] != "dan" for row in rows)

    def test_sql_results_identical_with_and_without(self, db):
        sql = (
            "SELECT e.name, d.floor FROM emp e, dept d "
            "WHERE e.dept = d.dept AND e.salary > 95"
        )
        with_opt = run_sql(db, sql, optimize=True)
        without = run_sql(db, sql, optimize=False)
        key = lambda r: sorted(r.items())
        assert sorted(with_opt, key=key) == sorted(without, key=key)
        assert len(with_opt) == 2

    def test_three_way_dips_shaped_query(self, db):
        run_sql(db, "CREATE TABLE grade (dept str, level int)")
        run_sql(
            db,
            "INSERT INTO grade (dept, level) VALUES ('eng', 2), ('ops', 1)",
        )
        sql = (
            "SELECT e.name FROM emp e, dept d, grade g "
            "WHERE e.dept = d.dept AND d.dept = g.dept AND g.level = 2"
        )
        rows = run_sql(db, sql)
        assert {r["e.name"] for r in rows} == {"ann", "bob"}
        assert rows == run_sql(db, sql, optimize=False)
