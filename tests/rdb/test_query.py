"""Unit tests for the logical query plan interpreter."""

import pytest

from repro.errors import QueryError
from repro.rdb import (
    Aggregate,
    ColumnRef,
    Comparison,
    Database,
    Distinct,
    Filter,
    GroupBy,
    IsNull,
    Join,
    Limit,
    Literal,
    LogicalAnd,
    LogicalNot,
    LogicalOr,
    OrderBy,
    Project,
    Scan,
    execute_plan,
)


@pytest.fixture
def db():
    database = Database()
    people = database.create_table("people", ["name", "dept", "salary"])
    rows = [
        ("ann", "eng", 120),
        ("bob", "eng", 100),
        ("cat", "ops", 90),
        ("dan", "ops", None),
        ("eve", "mgmt", 200),
    ]
    for name, dept, salary in rows:
        people.insert({"name": name, "dept": dept, "salary": salary})
    depts = database.create_table("depts", ["dept", "floor"])
    for dept, floor in [("eng", 3), ("ops", 1)]:
        depts.insert({"dept": dept, "floor": floor})
    return database


def col(name, qualifier=None):
    return ColumnRef(name, qualifier)


class TestScanFilterProject:
    def test_scan(self, db):
        rows = execute_plan(Scan("people"), db)
        assert len(rows) == 5

    def test_filter_comparison(self, db):
        plan = Filter(
            Scan("people"), Comparison(">", col("salary"), Literal(95))
        )
        names = {row["name"] for row in execute_plan(plan, db)}
        assert names == {"ann", "bob", "eve"}

    def test_null_comparison_is_unknown_not_true(self, db):
        plan = Filter(
            Scan("people"), Comparison("<", col("salary"), Literal(1000))
        )
        names = {row["name"] for row in execute_plan(plan, db)}
        assert "dan" not in names  # NULL salary -> unknown -> filtered

    def test_is_null(self, db):
        plan = Filter(Scan("people"), IsNull(col("salary")))
        assert [r["name"] for r in execute_plan(plan, db)] == ["dan"]
        plan = Filter(Scan("people"), IsNull(col("salary"), negated=True))
        assert len(execute_plan(plan, db)) == 4

    def test_project(self, db):
        plan = Project(Scan("people"), [(col("name"), "who")])
        rows = execute_plan(plan, db)
        assert rows[0] == {"who": "ann"}


class TestLogic:
    def test_and_or_not_three_valued(self, db):
        salary_high = Comparison(">", col("salary"), Literal(95))
        in_ops = Comparison("=", col("dept"), Literal("ops"))
        plan = Filter(Scan("people"), LogicalAnd(salary_high, in_ops))
        assert execute_plan(plan, db) == []
        plan = Filter(Scan("people"), LogicalOr(salary_high, in_ops))
        assert len(execute_plan(plan, db)) == 5  # dan: unknown OR true
        plan = Filter(Scan("people"), LogicalNot(in_ops))
        names = {row["name"] for row in execute_plan(plan, db)}
        assert names == {"ann", "bob", "eve"}

    def test_unknown_and_false_is_false(self, db):
        # dan's salary comparison is unknown; AND false must filter him
        # without tripping over the unknown.
        unknown = Comparison(">", col("salary"), Literal(0))
        false = Comparison("=", col("name"), Literal("nobody"))
        plan = Filter(Scan("people"), LogicalAnd(unknown, false))
        assert execute_plan(plan, db) == []


class TestJoin:
    def test_equi_join(self, db):
        plan = Join(
            Scan("people"),
            Scan("depts"),
            Comparison("=", col("dept", "people"), col("dept", "depts")),
        )
        rows = execute_plan(plan, db)
        assert len(rows) == 4  # eve's mgmt has no dept row
        assert all("depts.floor" in row for row in rows)

    def test_cross_join(self, db):
        plan = Join(Scan("people"), Scan("depts"))
        assert len(execute_plan(plan, db)) == 10

    def test_duplicate_alias_rejected(self, db):
        plan = Join(Scan("people"), Scan("people"))
        with pytest.raises(QueryError):
            execute_plan(plan, db)

    def test_self_join_with_aliases(self, db):
        plan = Join(
            Scan("people", "p1"),
            Scan("people", "p2"),
            Comparison("=", col("dept", "p1"), col("dept", "p2")),
        )
        assert len(execute_plan(plan, db)) == 9  # 2*2 eng + 2*2 ops + eve


class TestGroupBy:
    def test_group_with_aggregates(self, db):
        plan = GroupBy(
            Scan("people"),
            keys=[(col("dept"), "dept")],
            aggregates=[
                (Aggregate("count"), "n"),
                (Aggregate("sum", col("salary")), "total"),
                (Aggregate("collect", col("name")), "names"),
            ],
        )
        rows = {row["dept"]: row for row in execute_plan(plan, db)}
        assert rows["eng"]["n"] == 2
        assert rows["eng"]["total"] == 220
        assert rows["ops"]["total"] == 90  # NULL skipped
        assert rows["ops"]["names"] == ["cat", "dan"]

    def test_having(self, db):
        plan = GroupBy(
            Scan("people"),
            keys=[(col("dept"), "dept")],
            aggregates=[(Aggregate("count"), "n")],
            having=Comparison(">", col("n"), Literal(1)),
        )
        assert {row["dept"] for row in execute_plan(plan, db)} == {
            "eng", "ops",
        }

    def test_global_aggregate(self, db):
        plan = GroupBy(
            Scan("people"),
            keys=[],
            aggregates=[
                (Aggregate("avg", col("salary")), "avg"),
                (Aggregate("min", col("salary")), "lo"),
                (Aggregate("max", col("salary")), "hi"),
            ],
        )
        [row] = execute_plan(plan, db)
        assert row["avg"] == 127.5
        assert (row["lo"], row["hi"]) == (90, 200)

    def test_count_distinct(self, db):
        plan = GroupBy(
            Scan("people"),
            keys=[],
            aggregates=[
                (Aggregate("count", col("dept"), distinct=True), "n")
            ],
        )
        assert execute_plan(plan, db)[0]["n"] == 3


class TestOrderDistinctLimit:
    def test_order_by_asc_desc(self, db):
        plan = OrderBy(Scan("people"), [(col("salary"), False)])
        rows = execute_plan(plan, db)
        assert rows[0]["name"] == "eve"
        assert rows[-1]["name"] == "dan"  # NULLs sort last under DESC

    def test_nulls_first_ascending(self, db):
        plan = OrderBy(Scan("people"), [(col("salary"), True)])
        assert execute_plan(plan, db)[0]["name"] == "dan"

    def test_distinct(self, db):
        plan = Distinct(Project(Scan("people"), [(col("dept"), "dept")]))
        assert len(execute_plan(plan, db)) == 3

    def test_limit(self, db):
        assert len(execute_plan(Limit(Scan("people"), 2), db)) == 2


class TestErrors:
    def test_unknown_column(self, db):
        plan = Filter(Scan("people"), IsNull(col("zzz")))
        with pytest.raises(QueryError):
            execute_plan(plan, db)

    def test_ambiguous_unqualified_column(self, db):
        plan = Filter(
            Join(Scan("people"), Scan("depts")),
            IsNull(col("dept")),
        )
        with pytest.raises(QueryError):
            execute_plan(plan, db)

    def test_incomparable_types(self, db):
        plan = Filter(
            Scan("people"), Comparison("<", col("name"), Literal(3))
        )
        with pytest.raises(QueryError):
            execute_plan(plan, db)
