"""Unit tests for database snapshots (and DIPS state checkpointing)."""

import pytest

from repro.errors import DatabaseError
from repro.rdb import Database, run_sql
from repro.rdb.storage import (
    dump_database,
    load_database,
    restore_database,
    save_database,
)


@pytest.fixture
def db():
    database = Database()
    run_sql(
        database,
        "CREATE TABLE emp (name str NOT NULL, dept str, salary int)",
    )
    database.table("emp").create_index("dept")
    run_sql(
        database,
        "INSERT INTO emp (name, dept, salary) VALUES "
        "('ann', 'eng', 120), ('bob', NULL, NULL)",
    )
    return database


class TestRoundTrip:
    def test_dump_restore_preserves_rows(self, db):
        clone = restore_database(dump_database(db))
        assert run_sql(clone, "SELECT * FROM emp") == run_sql(
            db, "SELECT * FROM emp"
        )

    def test_schema_preserved(self, db):
        clone = restore_database(dump_database(db))
        column = clone.table("emp").schema.column("name")
        assert column.type == "str"
        assert not column.nullable

    def test_indexes_recreated(self, db):
        clone = restore_database(dump_database(db))
        assert clone.table("emp").index_on("dept") is not None
        assert len(clone.table("emp").lookup("dept", "eng")) == 1

    def test_file_round_trip(self, db, tmp_path):
        path = tmp_path / "snapshot.json"
        save_database(db, path)
        clone = load_database(path)
        assert run_sql(clone, "SELECT COUNT(*) AS n FROM emp") \
            == [{"n": 2}]

    def test_version_check(self):
        with pytest.raises(DatabaseError):
            restore_database({"version": 99, "tables": {}})

    def test_empty_database(self, tmp_path):
        path = tmp_path / "empty.json"
        save_database(Database(), path)
        assert load_database(path).table_names() == []


class TestDipsCheckpoint:
    def test_cond_state_survives_restart(self, tmp_path):
        """Match state checkpointed to disk keeps answering SOI queries."""
        from repro import RuleEngine
        from repro.dips import DipsMatcher

        matcher = DipsMatcher()
        engine = RuleEngine(matcher=matcher)
        engine.load(
            """
            (literalize E name salary)
            (literalize W name job)
            (p rule-1
              (E ^name <x> ^salary <s>)
              [W ^name <x> ^job clerk]
              --> (write matched))
            """
        )
        engine.make("W", name="Mike", job="clerk")
        engine.make("E", name="Mike", salary=10000)
        engine.make("W", name="Mike", job="clerk")
        engine.make("E", name="Mike", salary=15000)

        path = tmp_path / "dips.json"
        save_database(matcher.db, path)
        restored = load_database(path)

        rows = run_sql(restored, matcher.soi_query("rule-1"))
        groups = sorted(
            (row["tag_1"], sorted(row["tags_2"])) for row in rows
        )
        assert groups == [(2, [1, 3]), (4, [1, 3])]
