"""Unit tests for core instantiation types and recency ordering."""

from repro.core.instantiation import (
    Instantiation,
    MatchToken,
    SetInstantiation,
    recency_key,
)
from repro.lang.parser import parse_rule
from repro.wm import WME


def wme(tag, **values):
    return WME("item", values, tag)


RULE = parse_rule("(p r (item ^v <v>) --> (halt))")
SET_RULE = parse_rule("(p s [item ^v <v>] --> (halt))")


class TestRecencyKey:
    def test_sorted_descending(self):
        assert recency_key([3, 9, 1]) == (9, 3, 1)

    def test_lex_comparison_semantics(self):
        # Higher most-recent tag dominates.
        assert recency_key([5, 1]) > recency_key([4, 3])
        # Ties fall through to the next tag.
        assert recency_key([5, 3]) > recency_key([5, 2])
        # Equal prefix: the longer list dominates (OPS5 LEX).
        assert recency_key([5, 3]) > recency_key([5])


class TestMatchToken:
    def test_accessors(self):
        token = MatchToken([wme(2, v=1), None, wme(5, v=2)])
        assert token.wme_at(0).time_tag == 2
        assert token.wme_at(1) is None
        assert token.time_tags() == (5, 2)
        assert len(token.wmes()) == 3

    def test_value_equality_and_hash(self):
        a = MatchToken([wme(1, v=1)])
        b = MatchToken([WME("item", {"v": 1}, 1)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != MatchToken([wme(2, v=1)])


class TestInstantiation:
    def test_ordering_keys(self):
        inst = Instantiation(RULE, MatchToken([wme(4, v=1)]))
        assert inst.recency_key() == (4,)
        assert inst.mea_tag() == 4
        assert inst.specificity() == RULE.specificity()

    def test_refraction(self):
        inst = Instantiation(RULE, MatchToken([wme(1, v=1)]))
        assert inst.eligible()
        inst.mark_fired()
        assert not inst.eligible()

    def test_identity_stable(self):
        token = MatchToken([wme(1, v=1)])
        assert Instantiation(RULE, token).identity() == Instantiation(
            RULE, token
        ).identity()


class _FakeSoi:
    def __init__(self):
        self.tokens = []
        self.version = 0

    def key_wme(self, level):
        return None

    def p_value(self, name):
        raise KeyError(name)


class TestSetInstantiation:
    def test_ranked_by_head_token(self):
        soi = _FakeSoi()
        soi.tokens = [MatchToken([wme(9, v=1)]), MatchToken([wme(2, v=1)])]
        inst = SetInstantiation(SET_RULE, soi)
        assert inst.recency_key() == (9,)
        assert inst.mea_tag() == 9

    def test_empty_soi_keys(self):
        inst = SetInstantiation(SET_RULE, _FakeSoi())
        assert inst.recency_key() == ()
        assert inst.mea_tag() == 0

    def test_refire_on_version_change(self):
        soi = _FakeSoi()
        soi.tokens = [MatchToken([wme(1, v=1)])]
        inst = SetInstantiation(SET_RULE, soi)
        assert inst.eligible()
        inst.mark_fired()
        assert not inst.eligible()
        soi.version += 1
        assert inst.eligible()

    def test_tokens_snapshot_is_a_copy(self):
        soi = _FakeSoi()
        soi.tokens = [MatchToken([wme(1, v=1)])]
        inst = SetInstantiation(SET_RULE, soi)
        snapshot = inst.tokens()
        soi.tokens.append(MatchToken([wme(2, v=2)]))
        assert len(snapshot) == 1
        assert len(inst.tokens()) == 2
