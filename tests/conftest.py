"""Shared fixtures: paper working-memory setups and matcher matrix."""

from __future__ import annotations

import pytest

from repro import RuleEngine
from repro.dips import DipsMatcher
from repro.match import NaiveMatcher, TreatMatcher
from repro.rete import ReteNetwork

#: The paper's Figure 1 working memory: five players on two teams.
PAPER_ROSTER = [
    ("A", "Jack"),
    ("A", "Janice"),
    ("B", "Sue"),
    ("B", "Jack"),
    ("B", "Sue"),
]

MATCHER_FACTORIES = {
    "rete": ReteNetwork,
    "treat": TreatMatcher,
    "naive": NaiveMatcher,
    "dips": DipsMatcher,
}


@pytest.fixture(params=["rete", "treat", "naive"])
def matcher_name(request):
    """The incremental matchers (DIPS is exercised separately)."""
    return request.param


@pytest.fixture(params=["rete", "treat", "naive", "dips"])
def any_matcher_name(request):
    return request.param


@pytest.fixture
def make_engine():
    """Factory: ``make_engine(matcher_name='rete', **kwargs)``."""

    def factory(matcher_name="rete", **kwargs):
        matcher = MATCHER_FACTORIES[matcher_name]()
        return RuleEngine(matcher=matcher, **kwargs)

    return factory


def load_roster(engine, roster=None):
    """Declare the player class and make the given roster WMEs."""
    engine.literalize("player", "name", "team")
    for team, name in roster if roster is not None else PAPER_ROSTER:
        engine.make("player", team=team, name=name)


@pytest.fixture
def roster_engine(make_engine, matcher_name):
    """An engine (per incremental matcher) preloaded with Figure 1 WM."""

    def factory(program):
        engine = make_engine(matcher_name)
        engine.load(program)
        load_roster(engine)
        return engine

    return factory
