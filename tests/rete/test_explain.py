"""Unit tests for the network dump (and the sharing story it shows)."""

from repro.lang.parser import parse_rule
from repro.match.base import NullListener
from repro.rete import ReteNetwork
from repro.rete.explain import describe_network
from repro.wm import WorkingMemory


def build(*sources):
    wm = WorkingMemory()
    net = ReteNetwork()
    net.set_listener(NullListener())
    net.attach(wm)
    for source in sources:
        net.add_rule(parse_rule(source))
    return wm, net


class TestDescribeNetwork:
    def test_alpha_section_lists_tests(self):
        wm, net = build("(p r (a ^k 1 ^x <v> ^y <v>) --> (halt))")
        text = describe_network(net)
        assert "^k = 1" in text
        assert "^y = ^x" in text

    def test_shared_chain_shown_once(self):
        wm, net = build(
            "(p regular (a ^x <v>) (b ^y <v>) --> (halt))",
            "(p set-twin (a ^x <v>) { [b ^y <v>] <S> } "
            ":test ((count <S>) >= 1) --> (halt))",
        )
        wm.make("a", x=1)
        wm.make("b", y=1)
        text = describe_network(net)
        # One shared join chain, two terminals under the same memory.
        assert text.count("join L1") == 1
        assert "P-node [regular]" in text
        assert "S-node [set-twin]" in text
        assert "C=[0]" in text

    def test_negative_nodes_rendered(self):
        wm, net = build("(p r (goal) -(done) --> (halt))")
        wm.make("goal")
        text = describe_network(net)
        assert "negative L1" in text

    def test_disjunction_rendered(self):
        wm, net = build("(p r (a ^c << red green >>) --> (halt))")
        text = describe_network(net)
        assert "<< red green >>" in text

    def test_counts_are_live(self):
        wm, net = build("(p r (a) --> (halt))")
        for _ in range(3):
            wm.make("a")
        text = describe_network(net)
        assert "3 wmes" in text
        assert "3 instantiation(s)" in text


class TestCliNetworkCommand:
    def test_network_via_repl(self):
        from repro.cli import ReplSession

        session = ReplSession(watch=0)
        session.execute("(p r (a) --> (write x))")
        output = session.execute("network")
        assert "alpha memories" in output
        assert "P-node [r]" in output

    def test_network_requires_rete(self):
        from repro.cli import ReplSession

        session = ReplSession(matcher="treat", watch=0)
        assert "only available" in session.execute("network")
