"""Unit tests for the alpha network."""

from repro.analysis import RuleAnalysis
from repro.lang.parser import parse_rule
from repro.rete.alpha import AlphaNetwork
from repro.wm import WME


def ce_analysis(source, index=0):
    return RuleAnalysis(parse_rule(source)).ce_analyses[index]


class _Recorder:
    def __init__(self):
        self.added = []
        self.removed = []

    def right_activate(self, wme):
        self.added.append(wme)

    def right_retract(self, wme):
        self.removed.append(wme)


class TestAlphaSharing:
    def test_identical_tests_share_one_memory(self):
        network = AlphaNetwork()
        first = network.memory_for(
            ce_analysis("(p r1 (a ^k 1 ^x <v>) --> (halt))")
        )
        second = network.memory_for(
            ce_analysis("(p r2 (a ^k 2 ^y <w>) --> (halt))")
        )
        third = network.memory_for(
            ce_analysis("(p r3 (a ^k 1 ^x <q>) --> (halt))")
        )
        assert first is third
        assert first is not second
        assert network.memory_count == 2

    def test_free_variables_do_not_restrict_alpha(self):
        # A variable-only attribute adds no single-WME test, so CEs that
        # differ only in free variables share one memory.
        network = AlphaNetwork()
        first = network.memory_for(
            ce_analysis("(p r1 (a ^k 1 ^x <v>) --> (halt))")
        )
        second = network.memory_for(
            ce_analysis("(p r2 (a ^k 1 ^y <w>) --> (halt))")
        )
        assert first is second

    def test_set_and_regular_ces_share(self):
        """Paper §5: sharing holds between set and non-set rules."""
        network = AlphaNetwork()
        regular = network.memory_for(
            ce_analysis("(p r1 (a ^k 1) --> (halt))")
        )
        set_oriented = network.memory_for(
            ce_analysis("(p r2 [a ^k 1] --> (halt))")
        )
        assert regular is set_oriented


class TestRouting:
    def test_wme_routed_by_class_and_tests(self):
        network = AlphaNetwork()
        memory = network.memory_for(
            ce_analysis("(p r (a ^k 1) --> (halt))")
        )
        other = network.memory_for(
            ce_analysis("(p r2 (b) --> (halt))")
        )
        match = WME("a", {"k": 1}, 1)
        miss = WME("a", {"k": 2}, 2)
        network.add_wme(match)
        network.add_wme(miss)
        network.add_wme(WME("b", {}, 3))
        assert match in memory
        assert miss not in memory
        assert len(other) == 1

    def test_successors_notified(self):
        network = AlphaNetwork()
        memory = network.memory_for(
            ce_analysis("(p r (a) --> (halt))")
        )
        recorder = _Recorder()
        memory.successors.append(recorder)
        wme = WME("a", {}, 1)
        network.add_wme(wme)
        network.remove_wme(wme)
        assert recorder.added == [wme]
        assert recorder.removed == [wme]

    def test_remove_unknown_wme_is_noop(self):
        network = AlphaNetwork()
        network.memory_for(ce_analysis("(p r (a) --> (halt))"))
        network.remove_wme(WME("zzz", {}, 1))  # no error


class _OddWME:
    """A WME-shaped object carrying values outside the OPS5 domain.

    Working memory itself only admits symbols and numbers, so the
    unhashable-value handling in the index helpers is pure defence —
    exercised here directly since no public path can reach it.
    """

    def __init__(self, tag, **values):
        self.wme_class = "c"
        self.time_tag = tag
        self._values = values

    def get(self, attribute):
        return self._values.get(attribute, "nil")


class TestUnhashableIndexValues:
    def _memory(self):
        memory = AlphaNetwork().memory_for(
            ce_analysis("(p r (c ^k <v>) --> (halt))")
        )
        memory.ensure_index("k")
        return memory

    def test_unhashable_value_lands_in_sentinel_bucket(self):
        memory = self._memory()
        odd = _OddWME(1, k=[1, 2])
        plain = _OddWME(2, k=5)
        memory.add(odd)
        memory.add(plain)
        # Every probe also returns the sentinel bucket: the join's full
        # test list post-filters, so results never change.
        assert set(memory.indexed_wmes("k", 5)) == {plain, odd}
        assert memory.indexed_wmes("k", 99) == [odd]

    def test_unhashable_probe_value_raises_for_scan_fallback(self):
        memory = self._memory()
        memory.add(_OddWME(1, k=5))
        try:
            memory.indexed_wmes("k", [5])
        except TypeError:
            pass
        else:
            raise AssertionError("expected TypeError for scan fallback")

    def test_removal_prunes_sentinel_bucket(self):
        memory = self._memory()
        odd = _OddWME(1, k={"a": 1})
        memory.add(odd)
        memory.remove(odd)
        assert memory.indexed_wmes("k", 42) == []
        assert not memory.indexes["k"]
