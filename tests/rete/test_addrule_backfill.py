"""Backfilling a newly added rule from live working memory.

``ReteNetwork.add_rule`` on a populated network replays existing WMEs
into the fresh rule's subnetwork.  On a batched network that replay
must go through the staged S-node flush — one test/decide per touched
SOI, exactly as ``on_batch`` would do — not one re-evaluation per
token, and not the strict per-event paper path.
"""

from repro import MatchStats, RuleEngine
from repro.rete import ReteNetwork

LITERALIZE = """
(literalize dept name)
(literalize emp dept salary)
"""

SET_RULE = (
    "(p big-dept"
    "  (dept ^name <d>)"
    "  { [emp ^dept <d>] <staff> }"
    "  :test ((count <staff>) >= 2)"
    "  -->"
    "  (write big <d> (count <staff>)))"
)

PLAIN_RULE = (
    "(p well-paid (emp ^salary {<s> > 5}) --> (write paid <s>))"
)


def _populated(batched=True, stats=None):
    engine = RuleEngine(
        matcher=ReteNetwork(batched=batched), stats=stats
    )
    engine.load(LITERALIZE)
    engine.make("dept", name="sales")
    engine.make("dept", name="eng")
    for i in range(10):
        engine.make("emp", dept="sales" if i % 2 else "eng", salary=i)
    return engine


class TestStagedBackfill:
    def test_backfill_decides_once_per_soi(self):
        stats = MatchStats()
        engine = _populated(stats=stats)
        assert stats.totals["snode_batch_sois"] == 0
        engine.add_rule(SET_RULE)
        # Ten employee tokens land in two SOIs (sales, eng): the
        # staged flush evaluates each SOI once, not once per token.
        assert stats.totals["snode_batch_sois"] == 2
        assert stats.totals["snode_batch_reevals"] == 2
        engine.run()
        assert sorted(engine.output) == ["big eng 5", "big sales 5"]

    def test_backfill_matches_fresh_build(self):
        backfilled = _populated()
        backfilled.add_rule(SET_RULE)
        backfilled.add_rule(PLAIN_RULE)

        fresh = RuleEngine(matcher=ReteNetwork(batched=True))
        fresh.load(LITERALIZE)
        fresh.add_rule(SET_RULE)
        fresh.add_rule(PLAIN_RULE)
        fresh.make("dept", name="sales")
        fresh.make("dept", name="eng")
        for i in range(10):
            fresh.make("emp", dept="sales" if i % 2 else "eng", salary=i)

        assert (
            sorted(
                (i.rule.name, tuple(i.recency_key()))
                for i in backfilled.conflict_set
            )
            == sorted(
                (i.rule.name, tuple(i.recency_key()))
                for i in fresh.conflict_set
            )
        )
        backfilled.run()
        fresh.run()
        assert sorted(backfilled.output) == sorted(fresh.output)

    def test_unbatched_network_backfills_identically(self):
        batched = _populated(batched=True)
        per_event = _populated(batched=False)
        for engine in (batched, per_event):
            engine.add_rule(SET_RULE)
            engine.run()
        assert sorted(batched.output) == sorted(per_event.output)

    def test_backfill_does_not_disturb_existing_rules(self):
        stats = MatchStats()
        engine = _populated(stats=stats)
        engine.add_rule(SET_RULE)
        engine.run()
        fired_first = len(engine.output)
        # Adding an unrelated rule later neither refires big-dept nor
        # touches its SOIs again.
        sois_before = stats.totals["snode_batch_sois"]
        engine.add_rule(PLAIN_RULE)
        assert stats.totals["snode_batch_sois"] == sois_before
        engine.run()
        fired = engine.output[fired_first:]
        assert fired == sorted(fired, reverse=True)
        assert all(line.startswith("paid ") for line in fired)
