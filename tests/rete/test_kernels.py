"""Unit tests for the compiled match-kernel layer.

Covers mode resolution (flag / env / default), the structural cache
(sharing, keyspace separation), the exec-mode source renderer, exact
predicate semantics against the interpreter, the columnar alpha
mirror, and the process-pool columnar mask.
"""

import pytest

from repro import symbols
from repro.analysis import RuleAnalysis
from repro.engine.stats import MatchStats
from repro.errors import ReproError
from repro.lang.parser import parse_rule
from repro.rete import ReteNetwork
from repro.rete.kernels import (
    DEFAULT_MODE,
    KERNEL_MODES,
    KernelPack,
    _closure_alpha_kernel,
    _const_value_predicate,
    alpha_spec,
    build_kernels,
    columnar_mask,
    render_alpha_source,
    render_join_source,
    resolve_kernels,
    spec_attributes,
)
from repro.wm import WME


class StubWME:
    """WME-shaped stand-in that admits out-of-domain values.

    Working memory only accepts symbols and numbers; the defensive
    paths (bools, None, lists) are exercised by feeding the kernels
    directly, as the alpha/batch tests do.
    """

    def __init__(self, time_tag, **values):
        self.wme_class = "a"
        self.time_tag = time_tag
        self._values = values

    def get(self, attribute):
        return self._values.get(attribute)


def ce_analysis(source, index=0):
    return RuleAnalysis(parse_rule(source)).ce_analyses[index]


def join_tests(source, index=1):
    return RuleAnalysis(parse_rule(source)).ce_analyses[index].join_tests


TWO_CE_RULE = (
    "(p r (emp ^dept <d> ^salary <s>) (dept ^name <d> ^cap > 3) "
    "--> (halt))"
)


class TestModeResolution:
    def test_default_is_closure(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        assert resolve_kernels(None) == DEFAULT_MODE == "closure"

    def test_env_variable_supplies_the_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "exec")
        assert resolve_kernels(None) == "exec"
        monkeypatch.setenv("REPRO_KERNELS", "off")
        assert resolve_kernels(None) == "off"

    def test_explicit_spec_beats_the_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "exec")
        assert resolve_kernels("off") == "off"

    def test_boolean_conveniences(self):
        assert resolve_kernels(True) == DEFAULT_MODE
        assert resolve_kernels(False) == "off"

    def test_case_and_whitespace_insensitive(self):
        assert resolve_kernels(" EXEC ") == "exec"

    def test_unknown_mode_raises(self):
        with pytest.raises(ReproError, match="unknown kernel mode"):
            resolve_kernels("jit")

    def test_modes_tuple_is_the_contract(self):
        assert KERNEL_MODES == ("off", "closure", "exec")

    def test_build_kernels_off_returns_none(self):
        assert build_kernels("off") is None
        assert build_kernels("closure") is not None

    def test_pack_rejects_off(self):
        with pytest.raises(ReproError, match="compiled mode"):
            KernelPack("off")


class TestStructuralCache:
    @pytest.mark.parametrize("mode", ["closure", "exec"])
    def test_identical_alpha_chains_share_one_kernel(self, mode):
        pack = KernelPack(mode)
        first = pack.alpha(ce_analysis("(p r1 (a ^k 1) --> (halt))"))
        second = pack.alpha(ce_analysis("(p r2 (a ^k 1) --> (halt))"))
        third = pack.alpha(ce_analysis("(p r3 (a ^k 2) --> (halt))"))
        assert first is second
        assert first is not third
        assert pack.compiled == 2
        assert pack.cache_hits == 1

    @pytest.mark.parametrize("mode", ["closure", "exec"])
    def test_identical_join_chains_share_one_kernel(self, mode):
        pack = KernelPack(mode)
        first = pack.join(join_tests(TWO_CE_RULE))
        second = pack.join(join_tests(TWO_CE_RULE))
        assert first is second
        assert pack.cache_hits == 1

    def test_alpha_and_join_keyspaces_do_not_collide(self):
        # An alpha chain and a join chain can never alias one cache
        # slot: the key leads with the kind tag.
        pack = KernelPack("closure")
        pack.alpha(ce_analysis("(p r (a) --> (halt))"))
        pack.join(())
        pack.scan(())
        assert pack.compiled == 3
        assert pack.cache_hits == 0

    def test_counters_flow_into_match_stats(self):
        # share_beta off forces the second rule to rebuild its join
        # node; the structural kernel cache still returns the first
        # rule's compiled function as a hit.
        stats = MatchStats()
        network = ReteNetwork(kernels="closure", stats=stats,
                              share_beta=False)
        network.add_rule(parse_rule("(p r1 (a ^k 1) --> (halt))"))
        network.add_rule(parse_rule("(p r2 (a ^k 1) --> (halt))"))
        assert stats.totals["kernels_compiled"] >= 1
        assert stats.totals["kernel_cache_hits"] >= 1

    def test_shared_nodes_share_kernels_across_rules(self):
        network = ReteNetwork(kernels="closure")
        network.add_rule(parse_rule(TWO_CE_RULE))
        before = network.kernels.compiled
        network.add_rule(parse_rule(TWO_CE_RULE.replace("(p r ", "(p r2 ")))
        # The second rule's chains are structurally identical: every
        # lookup is a cache hit (when beta sharing does not skip node
        # construction entirely), no fresh compilation.
        assert network.kernels.compiled == before


class TestExecRenderer:
    def test_alpha_source_is_attached_and_compilable(self):
        pack = KernelPack("exec")
        kernel = pack.alpha(
            ce_analysis("(p r (a ^k 1 ^name red) --> (halt))")
        )
        source = kernel.__kernel_source__
        assert "def alpha_kernel(wme):" in source
        assert "wme.wme_class != 'a'" in source

    def test_join_source_renders_the_lookup_chain(self):
        source = render_join_source(
            tuple(t.key() for t in join_tests(TWO_CE_RULE))
        )
        assert "def join_kernel(wme, lookup):" in source
        assert "lookup(" in source

    def test_empty_join_chain_renders_true(self):
        assert "return True" in render_join_source(())

    def test_disjunction_renders_category_guards(self):
        spec = alpha_spec(
            ce_analysis("(p r (item ^c << red green 3 >>) --> (halt))")
        )
        source = render_alpha_source(spec)
        assert "isinstance(v, str)" in source
        assert "'red'" in source and "'green'" in source

    def test_unrenderable_operand_falls_back_to_closure(self):
        # A non-literal operand (here: a non-finite float smuggled into
        # the spec) cannot be rendered; the pack silently compiles the
        # closure form instead.
        pack = KernelPack("exec")
        analysis = ce_analysis("(p r (a ^k 1) --> (halt))")
        spec = alpha_spec(analysis)
        bad_spec = (spec[0], (("const", "k", "=", float("nan")),))
        with pytest.raises(Exception):
            render_alpha_source(bad_spec)
        kernel = pack.alpha(analysis)
        assert kernel(WME("a", {"k": 1}, 1))

    @pytest.mark.parametrize("mode", ["closure", "exec"])
    def test_exec_and_closure_agree_with_the_interpreter(self, mode):
        analysis = ce_analysis(
            "(p r (a ^k << red 2 >> ^n { > 2 <= 9 } ^s blue) --> (halt))"
        )
        kernel = KernelPack(mode).alpha(analysis)
        probes = [
            {"k": "red", "n": 5, "s": "blue"},
            {"k": 2, "n": 5, "s": "blue"},
            {"k": 2.0, "n": 5, "s": "blue"},
            {"k": True, "n": 5, "s": "blue"},
            {"k": "red", "n": True, "s": "blue"},
            {"k": "red", "n": 2, "s": "blue"},
            {"k": "red", "n": 9, "s": "blue"},
            {"k": "red", "n": 9.5, "s": "blue"},
            {"k": "red", "n": "5", "s": "blue"},
            {"k": "green", "n": 5, "s": "blue"},
            {"k": "red", "n": 5, "s": "red"},
            {"k": None, "n": None, "s": None},
        ]
        for values in probes:
            wme = StubWME(1, **values)
            assert kernel(wme) == analysis.wme_passes_alpha(wme), values


class TestPredicateSemantics:
    def test_equality_respects_ops_value_categories(self):
        eq = _const_value_predicate("=", 2)
        assert eq(2) and eq(2.0)
        assert not eq(True)  # bool is not an OPS number
        assert not eq("2")
        ne = _const_value_predicate("<>", 2)
        assert not ne(2.0) and ne(True) and ne("2")

    def test_order_predicates_guard_domains(self):
        gt = _const_value_predicate(">", 3)
        assert gt(4) and not gt(3) and not gt("zz") and not gt(True)

    def test_same_type_predicate(self):
        st = _const_value_predicate("<=>", 3)
        assert st(99) and st(1.5) and not st("x") and not st(True)

    def test_out_of_domain_operand_matches_interpreter(self):
        # '=' against an operand that is neither number nor symbol can
        # never match (values_equal is categorical); '<>' always does.
        assert not _const_value_predicate("=", None)(1)
        assert _const_value_predicate("<>", None)("x")

    @pytest.mark.parametrize("mode", ["closure", "exec"])
    @pytest.mark.parametrize(
        "predicate", ["=", "<>", "<", "<=", ">", ">=", "<=>"]
    )
    def test_join_kernels_match_apply_predicate(self, mode, predicate):
        from repro.analysis import JoinTest

        test = JoinTest("x", predicate, 0, "y")
        kernel = KernelPack(mode).join((test,))
        values = [0, 1, 2, 2.0, -1, 0.5, True, "a", "b", None]
        for left in values:
            for right in values:
                wme = StubWME(1, x=left)
                expected = symbols.apply_predicate(predicate, left, right)
                assert kernel(wme, lambda lv, at: right) == expected, (
                    predicate, left, right,
                )


class TestColumnarAlpha:
    def _network(self):
        network = ReteNetwork(kernels="closure")
        network.add_rule(parse_rule(TWO_CE_RULE))
        return network

    def test_memories_are_columnar_when_kernels_are_on(self):
        network = self._network()
        for memory in network.alpha.memories():
            assert memory.columnar
        assert not ReteNetwork(kernels="off").columnar

    def test_scan_view_preserves_insertion_order_across_removals(self):
        network = self._network()
        memory = network.alpha.memories()[0]
        wmes = [
            WME(memory.analysis.ce.wme_class,
                {"dept": f"d{i}", "salary": i, "name": f"d{i}", "cap": 9},
                i)
            for i in range(6)
        ]
        for wme in wmes:
            memory.add(wme)
        memory.remove(wmes[2])
        memory.remove(wmes[4])
        view, columns = memory.scan_view(("dept",))
        assert view == [wmes[0], wmes[1], wmes[3], wmes[5]]
        assert columns["dept"] == [w.get("dept") for w in view]
        # Adds after a rebuild keep the mirror incremental again.
        late = WME(memory.analysis.ce.wme_class, {"dept": "zz"}, 99)
        memory.add(late)
        view, columns = memory.scan_view(("dept",))
        assert view[-1] is late and columns["dept"][-1] == "zz"

    def test_columnar_mask_agrees_with_the_per_wme_kernel(self):
        analysis = ce_analysis(
            "(p r (a ^k << red 2 >> ^n { > 2 <= 9 }) --> (halt))"
        )
        spec = alpha_spec(analysis)
        kernel = _closure_alpha_kernel(spec)
        wmes = [
            StubWME(i, k=k, n=n)
            for i, (k, n) in enumerate([
                ("red", 5), (2, 3), (2.0, 9), ("red", 2), (True, 5),
                ("green", 5), ("red", 9.5), ("red", True), (None, None),
            ])
        ]
        columns = {
            attribute: [wme.get(attribute) for wme in wmes]
            for attribute in spec_attributes(spec)
        }
        mask = columnar_mask(spec, columns, len(wmes))
        assert mask == [kernel(wme) for wme in wmes]

    def test_spec_attributes_deduplicate(self):
        spec = ("a", (("const", "x", "=", 1), ("intra", "x", "<", "y")))
        assert spec_attributes(spec) == ("x", "y")


class TestUniformSelection:
    def test_engine_kernels_parameter(self):
        from repro.engine.engine import RuleEngine

        assert RuleEngine(kernels="exec").matcher.kernel_mode == "exec"
        assert RuleEngine(kernels="off").matcher.kernels is None

    def test_build_matcher_forwards_kernels(self):
        from repro.durability.checkpoint import build_matcher

        assert build_matcher("rete", kernels="exec").kernel_mode == "exec"
        sharded = build_matcher("sharded", kernels="off")
        assert all(shard.kernels is None for shard in sharded.shards)

    def test_cli_kernels_flag(self, capsys):
        from repro.cli import ReplSession

        session = ReplSession(matcher="rete", kernels="exec")
        assert session.engine.matcher.kernel_mode == "exec"

    def test_env_selects_for_default_networks(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "off")
        assert ReteNetwork().kernels is None
        monkeypatch.setenv("REPRO_KERNELS", "exec")
        assert ReteNetwork().kernel_mode == "exec"


class TestShardedColumnarOffload:
    def test_prefilter_ships_columnar_specs(self, monkeypatch):
        """The process-pool offload sends (spec, columns), not WMEs."""
        from repro.rete.sharded import ShardedReteNetwork
        from repro.wm.events import ADD, WMEvent

        network = ShardedReteNetwork(shards=2, kernels="closure")
        network.shards[0].add_rule(parse_rule(TWO_CE_RULE))

        class _InlinePool:
            """Runs submissions synchronously in-process."""

            def submit(self, fn, *args):
                class _Future:
                    def __init__(self, value):
                        self._value = value

                    def result(self):
                        return self._value

                return _Future(fn(*args))

        shipped = []
        real_mask = columnar_mask

        def spy(spec, columns, count):
            shipped.append((spec, tuple(columns)))
            return real_mask(spec, columns, count)

        monkeypatch.setattr(
            "repro.rete.sharded.columnar_mask", spy
        )
        monkeypatch.setattr(network, "_processes", lambda: _InlinePool())
        wmes = [
            WME("emp", {"dept": "d", "salary": i}, i) for i in range(4)
        ]
        events = [WMEvent(ADD, wme) for wme in wmes]
        live = [(network.shards[0], events)]
        alpha_filter = network._prefilter(live)
        assert alpha_filter is not None
        assert shipped, "kernelized shard should ship columnar tasks"
        for memory in network.shards[0].alpha.memories_of_class("emp"):
            passing = alpha_filter(memory, wmes)
            passes = memory.passes
            assert passing == [w for w in wmes if passes(w)]
