"""Unit tests for incremental aggregate state."""

import pytest

from repro.core.instantiation import MatchToken
from repro.errors import EngineError
from repro.rete.aggregates import AggregateSpec, AggregateState
from repro.wm import WME


def token(*values, tag_start=1):
    """One-level tokens over 'item' WMEs with a ^v attribute."""
    wmes = [
        WME("item", {"v": value}, tag_start + index)
        for index, value in enumerate(values)
    ]
    return [MatchToken([wme]) for wme in wmes]


def pv_state(op):
    return AggregateState(AggregateSpec(op, "v", "pv", 0, "v"))


def ce_state(op, attribute="v"):
    return AggregateState(AggregateSpec(op, "S", "ce", 0, attribute))


class TestSpecs:
    def test_ce_numeric_aggregate_requires_attribute(self):
        with pytest.raises(EngineError):
            AggregateSpec("sum", "S", "ce", 0, None)

    def test_ce_count_needs_no_attribute(self):
        AggregateSpec("count", "S", "ce", 0, None)

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            AggregateSpec("count", "S", "weird", 0)


class TestCount:
    def test_pv_count_is_distinct_values(self):
        state = pv_state("count")
        for t in token(1, 2, 2, 3):
            state.add_token(t)
        assert state.value() == 3  # domain {1, 2, 3}

    def test_ce_count_is_distinct_wmes(self):
        state = ce_state("count")
        for t in token(2, 2, 2):
            state.add_token(t)
        assert state.value() == 3  # three distinct WMEs, same value

    def test_count_tracks_removal(self):
        state = pv_state("count")
        tokens = token(1, 2)
        for t in tokens:
            state.add_token(t)
        state.remove_token(tokens[0])
        assert state.value() == 1


class TestSumAvg:
    def test_sum_over_pv_domain(self):
        state = pv_state("sum")
        for t in token(1, 2, 2, 4):
            state.add_token(t)
        assert state.value() == 7  # distinct values 1+2+4

    def test_sum_over_ce_members(self):
        state = ce_state("sum")
        for t in token(2, 2, 3):
            state.add_token(t)
        assert state.value() == 7  # per-WME: 2+2+3

    def test_avg(self):
        state = ce_state("avg")
        for t in token(2, 4):
            state.add_token(t)
        assert state.value() == 3.0

    def test_avg_empty_is_none(self):
        assert ce_state("avg").value() is None

    def test_sum_rejects_symbols(self):
        state = ce_state("sum")
        state.add_token(token("x")[0])
        with pytest.raises(EngineError):
            state.value()


class TestMinMax:
    def test_min_max_incremental(self):
        state = ce_state("max")
        tokens = token(3, 9, 5)
        for t in tokens:
            state.add_token(t)
        assert state.value() == 9
        state.remove_token(tokens[1])  # evict the maximum
        assert state.value() == 5

    def test_min_recompute_after_eviction(self):
        state = ce_state("min")
        tokens = token(3, 1, 5)
        for t in tokens:
            state.add_token(t)
        assert state.value() == 1
        state.remove_token(tokens[1])
        assert state.value() == 3
        state.remove_token(tokens[0])
        assert state.value() == 5

    def test_min_max_empty_is_none(self):
        state = ce_state("min")
        t = token(1)[0]
        state.add_token(t)
        state.remove_token(t)
        assert state.value() is None

    def test_duplicate_extremum_survives_one_removal(self):
        # Two distinct WMEs share the maximum value; removing one keeps it.
        state = ce_state("max")
        tokens = token(7, 7, 3)
        for t in tokens:
            state.add_token(t)
        state.remove_token(tokens[0])
        assert state.value() == 7


class TestMultiplicity:
    def test_shared_contribution_counted_once_until_all_gone(self):
        # Two different tokens can carry the same WME (join products);
        # the (value, counter) pairs of the paper track multiplicity.
        wme = WME("item", {"v": 5}, 1)
        other = WME("peer", {}, 2)
        first = MatchToken([wme, other])
        second = MatchToken([wme, WME("peer", {}, 3)])
        state = AggregateState(AggregateSpec("count", "S", "ce", 0, None))
        state.add_token(first)
        state.add_token(second)
        assert state.value() == 1
        state.remove_token(first)
        assert state.value() == 1  # still referenced by `second`
        state.remove_token(second)
        assert state.value() == 0

    def test_snapshot_matches_paper_format(self):
        state = ce_state("sum")
        tokens = token(2, 2)
        for t in tokens:
            state.add_token(t)
        value, pairs = state.snapshot()
        assert value == 4
        assert sorted(pairs) == [(2, 1), (2, 1)]

    def test_remove_unknown_token_is_noop(self):
        state = pv_state("count")
        state.remove_token(token(9)[0])
        assert state.value() == 0

    def test_negated_level_contributes_nothing(self):
        spec = AggregateSpec("count", "S", "ce", 1, None)
        state = AggregateState(spec)
        wme = WME("item", {"v": 1}, 1)
        state.add_token(MatchToken([wme, None]))
        assert state.value() == 0
