"""Integration-level tests of the Rete network: joins, deletion, sharing."""

import pytest

from repro.errors import RuleError
from repro.lang.parser import parse_rule
from repro.rete import ReteNetwork
from repro.wm import WorkingMemory


class Listener:
    def __init__(self):
        self.live = []
        self.events = []

    def insert(self, inst):
        self.live.append(inst)
        self.events.append(("+", inst.rule.name))

    def retract(self, inst):
        self.live.remove(inst)
        self.events.append(("-", inst.rule.name))

    def reposition(self, inst):
        self.events.append(("time", inst.rule.name))


def build(*sources, wmes=()):
    wm = WorkingMemory()
    listener = Listener()
    net = ReteNetwork()
    net.set_listener(listener)
    net.attach(wm)
    for source in sources:
        net.add_rule(parse_rule(source))
    return wm, net, listener


class TestJoins:
    def test_two_ce_equijoin(self):
        wm, net, listener = build(
            "(p r (a ^x <v>) (b ^y <v>) --> (halt))"
        )
        wm.make("a", x=1)
        wm.make("b", y=2)
        assert len(listener.live) == 0
        wm.make("b", y=1)
        assert len(listener.live) == 1

    def test_join_order_independent(self):
        """Right activation (b first) and left activation both work."""
        wm, net, listener = build(
            "(p r (a ^x <v>) (b ^y <v>) --> (halt))"
        )
        wm.make("b", y=7)
        wm.make("a", x=7)
        assert len(listener.live) == 1

    def test_three_way_join(self):
        wm, net, listener = build(
            "(p r (a ^x <v>) (b ^x <v> ^y <w>) (c ^y <w>) --> (halt))"
        )
        wm.make("a", x=1)
        wm.make("b", x=1, y=2)
        wm.make("c", y=2)
        assert len(listener.live) == 1
        wm.make("c", y=2)
        assert len(listener.live) == 2

    def test_inequality_join(self):
        wm, net, listener = build(
            "(p r (bid ^amount <a>) (ask ^amount <= <a>) --> (halt))"
        )
        wm.make("bid", amount=10)
        wm.make("ask", amount=12)
        assert not listener.live
        wm.make("ask", amount=10)
        assert len(listener.live) == 1

    def test_self_join_no_duplicate_tokens(self):
        # One WME satisfying two CEs of the same rule must produce one
        # instantiation, not two (alpha successors right-activate
        # deepest-first to guarantee this).
        wm, net, listener = build("(p r (a ^x <v>) (a ^x <v>) --> (halt))")
        wm.make("a", x=1)
        assert len(listener.live) == 1
        wm.make("a", x=1)
        assert len(listener.live) == 4  # 2x2 pairs

    def test_self_blocking_negation(self):
        wm, net, listener = build("(p r (a ^x <v>) -(a ^x <v>) --> (halt))")
        wm.make("a", x=1)
        assert len(listener.live) == 0

    def test_cross_product_without_shared_vars(self):
        wm, net, listener = build("(p r (a) (b) --> (halt))")
        for _ in range(3):
            wm.make("a")
        for _ in range(2):
            wm.make("b")
        assert len(listener.live) == 6


class TestRemoval:
    def test_wme_removal_retracts_instantiations(self):
        wm, net, listener = build(
            "(p r (a ^x <v>) (b ^y <v>) --> (halt))"
        )
        a = wm.make("a", x=1)
        wm.make("b", y=1)
        wm.make("b", y=1)
        assert len(listener.live) == 2
        wm.remove(a)
        assert len(listener.live) == 0

    def test_modify_retracts_then_reasserts(self):
        wm, net, listener = build("(p r (a ^x 1) --> (halt))")
        a = wm.make("a", x=1)
        assert len(listener.live) == 1
        a2 = wm.modify(a, x=2)
        assert len(listener.live) == 0
        wm.modify(a2, x=1)
        assert len(listener.live) == 1

    def test_token_cleanup_is_complete(self):
        wm, net, listener = build(
            "(p r (a ^x <v>) (b ^y <v>) --> (halt))"
        )
        wmes = [wm.make("a", x=i % 3) for i in range(6)]
        wmes += [wm.make("b", y=i % 3) for i in range(6)]
        for wme in wmes:
            wm.remove(wme)
        assert not listener.live
        assert net.stats.tokens_created == net.stats.tokens_deleted
        assert not net._wme_tokens


class TestSharing:
    def test_identical_join_prefix_shared(self):
        wm, net, listener = build(
            "(p r1 (a ^x <v>) (b ^y <v>) --> (halt))",
            "(p r2 (a ^x <v>) (b ^y <v>) (c) --> (halt))",
        )
        wm.make("a", x=1)
        wm.make("b", y=1)
        wm.make("c")
        assert len(listener.live) == 2
        # The dummy top has exactly one successor: the shared first join.
        assert len(net.dummy_top.successors) == 1

    def test_set_rule_shares_prefix_with_regular_rule(self):
        """Paper §5: the network is untouched except at the end."""
        wm, net, listener = build(
            "(p regular (a ^x <v>) (b ^y <v>) --> (halt))",
            "(p set-version (a ^x <v>) [b ^y <v>] --> (halt))",
        )
        assert len(net.dummy_top.successors) == 1
        wm.make("a", x=1)
        wm.make("b", y=1)
        names = sorted(inst.rule.name for inst in listener.live)
        assert names == ["regular", "set-version"]

    def test_duplicate_rule_name_rejected(self):
        wm, net, listener = build("(p r (a) --> (halt))")
        with pytest.raises(RuleError):
            net.add_rule(parse_rule("(p r (b) --> (halt))"))


class TestLateRuleAddition:
    def test_rule_added_after_wmes_backfills(self):
        wm, net, listener = build()
        wm.make("a", x=1)
        wm.make("b", y=1)
        net.add_rule(parse_rule("(p late (a ^x <v>) (b ^y <v>) --> (halt))"))
        assert len(listener.live) == 1

    def test_late_rule_sharing_existing_prefix(self):
        wm, net, listener = build("(p r1 (a ^x <v>) (b ^y <v>) --> (halt))")
        wm.make("a", x=1)
        wm.make("b", y=1)
        net.add_rule(
            parse_rule("(p r2 (a ^x <v>) (b ^y <v>) (c) --> (halt))")
        )
        wm.make("c")
        assert len(listener.live) == 2

    def test_late_set_rule_backfills_soi(self):
        wm, net, listener = build()
        for value in (1, 2, 3):
            wm.make("item", v=value)
        net.add_rule(parse_rule("(p late [item ^v <v>] --> (halt))"))
        assert len(listener.live) == 1
        assert len(listener.live[0].tokens()) == 3
