"""Unit tests for negated condition elements."""

from repro.lang.parser import parse_rule
from repro.rete import ReteNetwork
from repro.wm import WorkingMemory

from tests.rete.test_network import Listener


def build(*sources):
    wm = WorkingMemory()
    listener = Listener()
    net = ReteNetwork()
    net.set_listener(listener)
    net.attach(wm)
    for source in sources:
        net.add_rule(parse_rule(source))
    return wm, net, listener


class TestBasicNegation:
    def test_absence_matches(self):
        wm, net, listener = build("(p r (goal) -(done) --> (halt))")
        wm.make("goal")
        assert len(listener.live) == 1

    def test_blocker_retracts(self):
        wm, net, listener = build("(p r (goal) -(done) --> (halt))")
        wm.make("goal")
        done = wm.make("done")
        assert len(listener.live) == 0
        wm.remove(done)
        assert len(listener.live) == 1

    def test_multiple_blockers_counted(self):
        wm, net, listener = build("(p r (goal) -(done) --> (halt))")
        wm.make("goal")
        first = wm.make("done")
        second = wm.make("done")
        wm.remove(first)
        assert len(listener.live) == 0  # still blocked by the second
        wm.remove(second)
        assert len(listener.live) == 1

    def test_blocker_present_before_positive(self):
        wm, net, listener = build("(p r (goal) -(done) --> (halt))")
        wm.make("done")
        wm.make("goal")
        assert len(listener.live) == 0


class TestNegationWithVariables:
    def test_negation_joins_on_bound_variable(self):
        wm, net, listener = build(
            "(p r (task ^id <i>) -(lock ^id <i>) --> (halt))"
        )
        wm.make("task", id=1)
        wm.make("task", id=2)
        wm.make("lock", id=1)
        names = [inst.token.wme_at(0).get("id") for inst in listener.live]
        assert names == [2]

    def test_negated_intra_ce_variable(self):
        # <x> bound and tested within the negated CE itself.
        wm, net, listener = build(
            "(p r (goal) -(pair ^a <x> ^b <x>) --> (halt))"
        )
        wm.make("goal")
        assert len(listener.live) == 1
        wm.make("pair", a=1, b=2)  # not a blocker: a != b
        assert len(listener.live) == 1
        blocker = wm.make("pair", a=3, b=3)
        assert len(listener.live) == 0
        wm.remove(blocker)
        assert len(listener.live) == 1


class TestNegationPositions:
    def test_leading_negation(self):
        wm, net, listener = build("(p r -(stop) (goal) --> (halt))")
        wm.make("goal")
        assert len(listener.live) == 1
        wm.make("stop")
        assert len(listener.live) == 0

    def test_double_negation_levels(self):
        wm, net, listener = build(
            "(p r (goal) -(a) -(b) --> (halt))"
        )
        wm.make("goal")
        assert len(listener.live) == 1
        a = wm.make("a")
        wm.make("b")
        assert len(listener.live) == 0
        wm.remove(a)
        assert len(listener.live) == 0  # b still blocks

    def test_removing_positive_under_negation(self):
        wm, net, listener = build("(p r (goal) -(done) --> (halt))")
        goal = wm.make("goal")
        wm.remove(goal)
        assert len(listener.live) == 0
        assert net.stats.tokens_created == net.stats.tokens_deleted


class TestNegationAndSetRules:
    def test_negated_ce_with_set_ce(self):
        wm, net, listener = build(
            "(p r { [item ^status raw] <Items> } -(stop) --> (halt))"
        )
        wm.make("item", status="raw")
        wm.make("item", status="raw")
        assert len(listener.live) == 1
        assert len(listener.live[0].tokens()) == 2
        wm.make("stop")
        assert len(listener.live) == 0
