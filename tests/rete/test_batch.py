"""Batched delta propagation through the Rete network."""

from repro import MatchStats, RuleEngine
from repro.rete import ReteNetwork

SELF_JOIN = """
(literalize pair v)
(p twin (pair ^v <x>) (pair ^v <x>) --> (write twin <x>))
"""

SET_RULE = """
(literalize dept name)
(literalize emp dept salary)
(p big-dept
  (dept ^name <d>)
  { [emp ^dept <d>] <staff> }
  :test ((count <staff>) >= 2)
  -->
  (write big <d> (count <staff>)))
"""

NEGATION = """
(literalize task id)
(literalize lock id)
(p free (task ^id <i>) -(lock ^id <i>) --> (write free <i>))
"""


def _engine(source, batched=True, stats=None):
    engine = RuleEngine(matcher=ReteNetwork(batched=batched), stats=stats)
    engine.load(source)
    return engine


class TestBatchedJoins:
    def test_self_join_pairs_found_exactly_once(self):
        """Both WMEs of a pair arrive in ONE batch: no duplicate matches."""
        batched = _engine(SELF_JOIN)
        reference = _engine(SELF_JOIN, batched=False)
        for engine in (batched, reference):
            with engine.batch():
                engine.make("pair", v=1)
                engine.make("pair", v=1)
                engine.make("pair", v=2)
            engine.run()
        assert sorted(batched.output) == sorted(reference.output)
        assert len(batched.conflict_set) == len(reference.conflict_set)

    def test_grouped_probe_does_less_join_work(self):
        stats_batched = MatchStats()
        stats_events = MatchStats()
        batched = _engine(SET_RULE, stats=stats_batched)
        per_event = _engine(SET_RULE, batched=False, stats=stats_events)
        for engine in (batched, per_event):
            engine.make("dept", name="sales")
            engine.make("dept", name="eng")
            with engine.batch():
                for i in range(40):
                    engine.make(
                        "emp", dept="sales" if i % 2 else "eng", salary=i
                    )
        assert (
            stats_batched.totals["join_tests_attempted"]
            < stats_events.totals["join_tests_attempted"]
        )
        assert stats_batched.totals["group_probes"] > 0
        batched.run()
        per_event.run()
        assert batched.output == per_event.output

    def test_out_of_domain_values_fall_back_safely(self):
        """Defensive path: WME-shaped objects with non-OPS5 values.

        Working memory only admits symbols and numbers, so (as in
        test_alpha) the unhashable/None handling of the grouped probe
        is exercised by feeding the network directly.
        """
        from repro.lang import parse_rule
        from repro.match.base import CountingListener
        from repro.wm.events import ADD, WMEvent

        class _OddWME:
            def __init__(self, tag, **values):
                self.wme_class = "c"
                self.time_tag = tag
                self._values = values

            def get(self, attribute):
                return self._values.get(attribute, "nil")

        rule = parse_rule("(p r (c ^k <v>) (c ^k <v>) --> (halt))")
        counts = {}
        for batched in (True, False):
            network = ReteNetwork(batched=batched)
            listener = CountingListener()
            network.set_listener(listener)
            network.add_rule(rule)
            network.on_batch([
                WMEvent(ADD, _OddWME(1, k=[1, 2])),  # unhashable
                WMEvent(ADD, _OddWME(2, k=None)),  # out of domain
                WMEvent(ADD, _OddWME(3, k=5)),
                WMEvent(ADD, _OddWME(4, k=5)),
            ])
            counts[batched] = listener.inserts
        assert counts[True] == counts[False]
        # The two k=5 WMEs self-join both ways, plus each with itself.
        assert counts[True] == 4


class TestBatchedSNode:
    def test_snode_reevaluates_once_per_batch(self):
        stats = MatchStats()
        engine = _engine(SET_RULE, stats=stats)
        engine.make("dept", name="sales")
        with engine.batch():
            for i in range(10):
                engine.make("emp", dept="sales", salary=i)
        # One SOI touched, one test re-evaluation for the whole batch.
        assert stats.totals["snode_batch_sois"] == 1
        assert stats.totals["snode_batch_reevals"] == 1
        engine.run()
        assert engine.output == ["big sales 10"]

    def test_soi_emptied_and_recreated_within_batch(self):
        engine = _engine(SET_RULE)
        engine.make("dept", name="sales")
        first = [
            engine.make("emp", dept="sales", salary=i) for i in range(3)
        ]
        engine.run()
        assert engine.output == ["big sales 3"]
        with engine.batch():
            for wme in first:
                engine.remove(wme)
            for i in range(2):
                engine.make("emp", dept="sales", salary=10 + i)
        engine.run()
        assert engine.output == ["big sales 3", "big sales 2"]

    def test_batch_refire_only_when_set_touched(self):
        engine = _engine(SET_RULE)
        engine.make("dept", name="sales")
        engine.make("dept", name="eng")
        with engine.batch():
            engine.make("emp", dept="sales", salary=1)
            engine.make("emp", dept="sales", salary=2)
            engine.make("emp", dept="eng", salary=3)
            engine.make("emp", dept="eng", salary=4)
        engine.run()
        assert sorted(engine.output) == ["big eng 2", "big sales 2"]
        # Touch only the sales set: just that SOI refires.
        with engine.batch():
            engine.make("emp", dept="sales", salary=5)
        engine.run()
        assert sorted(engine.output) == [
            "big eng 2", "big sales 2", "big sales 3"
        ]

    def test_transient_set_member_never_fires(self):
        engine = _engine(SET_RULE)
        engine.make("dept", name="sales")
        with engine.batch():
            engine.make("emp", dept="sales", salary=1)
            doomed = engine.make("emp", dept="sales", salary=2)
            engine.remove(doomed)
        engine.run()
        # Only one surviving member: the :test (count >= 2) fails.
        assert engine.output == []


class TestBatchedNegation:
    def test_blocker_and_item_in_one_batch(self):
        batched = _engine(NEGATION)
        reference = _engine(NEGATION, batched=False)
        for engine in (batched, reference):
            with engine.batch():
                engine.make("task", id=1)
                engine.make("task", id=2)
                engine.make("lock", id=1)
            engine.run()
        assert sorted(batched.output) == sorted(reference.output)
        assert sorted(batched.output) == ["free 2"]

    def test_unblocking_remove_in_batch(self):
        engine = _engine(NEGATION)
        engine.make("task", id=1)
        lock = engine.make("lock", id=1)
        engine.run()
        assert engine.output == []
        with engine.batch():
            engine.remove(lock)
        engine.run()
        assert engine.output == ["free 1"]


class TestEngineBatchApi:
    def test_load_facts_returns_wmes_in_order(self):
        engine = _engine(SET_RULE)
        engine.make("dept", name="sales")
        made = engine.load_facts(
            ("emp", {"dept": "sales", "salary": i}) for i in range(4)
        )
        assert [w.get("salary") for w in made] == [0, 1, 2, 3]
        assert all(w in engine.wm for w in made)
        engine.run()
        assert engine.output == ["big sales 4"]

    def test_unbatched_network_flag_replays(self):
        stats = MatchStats()
        engine = _engine(SET_RULE, batched=False, stats=stats)
        engine.make("dept", name="sales")
        with engine.batch():
            engine.make("emp", dept="sales", salary=1)
            engine.make("emp", dept="sales", salary=2)
        # The flush happened (WM-side counters), but the network replayed
        # per event: no grouped probes, no staged S-node flushes.
        assert stats.totals["batches"] == 1
        assert stats.totals["group_probes"] == 0
        assert stats.totals["snode_batch_sois"] == 0
        engine.run()
        assert engine.output == ["big sales 2"]

    def test_rule_added_after_batch_backfills(self):
        engine = RuleEngine()
        engine.literalize("dept", "name")
        engine.literalize("emp", "dept", "salary")
        with engine.batch():
            engine.make("dept", name="sales")
            engine.make("emp", dept="sales", salary=1)
            engine.make("emp", dept="sales", salary=2)
        engine.load("""
        (p big-dept
          (dept ^name <d>)
          { [emp ^dept <d>] <staff> }
          :test ((count <staff>) >= 2)
          -->
          (write big <d> (count <staff>)))
        """)
        engine.run()
        assert engine.output == ["big sales 2"]
