"""Unit tests for the terminal production nodes."""

import pytest

from repro.lang.parser import parse_rule
from repro.rete.pnode import PNode, SetPNode


class _FakeNetwork:
    def __init__(self, listener):
        self.listener = listener


class _Listener:
    def __init__(self):
        self.events = []

    def insert(self, inst):
        self.events.append(("+", inst))

    def retract(self, inst):
        self.events.append(("-", inst))

    def reposition(self, inst):
        self.events.append(("time", inst))


class _Token:
    def wme_at(self, level):
        return None

    def wmes(self):
        return ()

    def time_tags(self):
        return ()


RULE = parse_rule("(p r (a) --> (halt))")
SET_RULE = parse_rule("(p s [a] --> (halt))")


class TestPNode:
    def test_add_remove_lifecycle(self):
        listener = _Listener()
        pnode = PNode(RULE, _FakeNetwork(listener))
        token = _Token()
        pnode.token_added(token)
        assert len(pnode) == 1
        pnode.token_removed(token)
        assert len(pnode) == 0
        assert [sign for sign, _ in listener.events] == ["+", "-"]

    def test_unknown_token_removal_is_noop(self):
        listener = _Listener()
        pnode = PNode(RULE, _FakeNetwork(listener))
        pnode.token_removed(_Token())
        assert listener.events == []


class _Soi:
    tokens = []
    version = 0

    def key_wme(self, level):
        return None

    def p_value(self, name):
        raise KeyError(name)


class TestSetPNode:
    def test_mark_protocol(self):
        listener = _Listener()
        node = SetPNode(SET_RULE, _FakeNetwork(listener))
        soi = _Soi()
        node.receive("+", soi)
        node.receive("time", soi)
        node.receive("-", soi)
        assert [sign for sign, _ in listener.events] == ["+", "time", "-"]
        assert len(node) == 0

    def test_time_for_unknown_soi_is_noop(self):
        listener = _Listener()
        node = SetPNode(SET_RULE, _FakeNetwork(listener))
        node.receive("time", _Soi())
        node.receive("-", _Soi())
        assert listener.events == []

    def test_unknown_mark_raises(self):
        node = SetPNode(SET_RULE, _FakeNetwork(_Listener()))
        with pytest.raises(ValueError):
            node.receive("??", _Soi())
