"""Unit tests for tokens and beta memories (direct, not via the network)."""

from repro.rete.beta import BetaMemory, DummyToken, Token
from repro.wm import WME


def wme(tag, **values):
    return WME("c", values, tag)


def chain(*wmes):
    """Build a token chain over *wmes* (None = negated level)."""
    token = DummyToken()
    for level, element in enumerate(wmes):
        token = Token(token, element, None, level)
    return token


class TestTokenChains:
    def test_wme_at_walks_levels(self):
        token = chain(wme(1), wme(2), wme(3))
        assert token.wme_at(0).time_tag == 1
        assert token.wme_at(2).time_tag == 3
        assert token.wme_at(9) is None

    def test_negated_level_is_none(self):
        token = chain(wme(1), None, wme(3))
        assert token.wme_at(1) is None
        assert token.wmes() == (
            token.wme_at(0), None, token.wme_at(2)
        )

    def test_time_tags_sorted_desc_and_skip_negated(self):
        token = chain(wme(2), None, wme(7))
        assert token.time_tags() == (7, 2)

    def test_time_tags_cached(self):
        token = chain(wme(1))
        assert token.time_tags() is token.time_tags()

    def test_lookup_resolves_bindings(self):
        token = chain(wme(1, x=5), wme(2, y="s"))
        assert token.lookup(0, "x") == 5
        assert token.lookup(1, "y") == "s"
        assert token.lookup(0, "missing") == "nil"

    def test_lookup_negated_level_is_none(self):
        token = chain(wme(1), None)
        assert token.lookup(1, "x") is None

    def test_children_registered_on_parent(self):
        parent = chain(wme(1))
        child = Token(parent, wme(2), None, 1)
        assert child in parent.children

    def test_dummy_token_properties(self):
        dummy = DummyToken()
        assert dummy.level == -1
        assert dummy.wmes() == ()
        assert dummy.time_tags() == ()
        assert dummy.wme_at(0) is None


class _FakeNetwork:
    def __init__(self):
        self.registered = []

    def register_token(self, token):
        self.registered.append(token)


class TestBetaMemory:
    def test_left_activate_stores_and_notifies(self):
        memory = BetaMemory(None, 0)
        events = []

        class Observer:
            def token_added(self, token):
                events.append(("+", token))

            def token_removed(self, token):
                events.append(("-", token))

        memory.observers.append(Observer())
        network = _FakeNetwork()
        token = memory.left_activate(DummyToken(), wme(1), network)
        assert token in memory.items
        assert network.registered == [token]
        memory.remove_token(token)
        assert [sign for sign, _ in events] == ["+", "-"]
        assert len(memory) == 0

    def test_active_tokens_lists_all(self):
        memory = BetaMemory(None, 0)
        network = _FakeNetwork()
        first = memory.left_activate(DummyToken(), wme(1), network)
        second = memory.left_activate(DummyToken(), wme(2), network)
        assert memory.active_tokens() == [first, second]
