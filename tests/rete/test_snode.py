"""Unit tests for the S-node: the paper's Figure 3 algorithm.

These tests observe the raw ``+`` / ``-`` / ``time`` marks the S-node
sends to its P-node, plus the γ-memory structure, for scripted token
sequences — the direct reproduction of the algorithm's state machine.
"""


from repro.lang.parser import parse_rule
from repro.rete import ReteNetwork
from repro.rete.snode import ACTIVE, INACTIVE
from repro.wm import WorkingMemory

from tests.rete.test_network import Listener


def build(source, strict=False):
    wm = WorkingMemory()
    listener = Listener()
    net = ReteNetwork(strict_paper_decide=strict)
    net.set_listener(listener)
    net.attach(wm)
    rule = parse_rule(source)
    net.add_rule(rule)
    snode = net.snode_for(rule.name)
    marks = []
    original = snode.emit

    def recording_emit(mark, soi):
        marks.append((mark, soi))
        original(mark, soi)

    snode.emit = recording_emit
    return wm, net, listener, snode, marks


class TestStaticData:
    def test_five_tuple(self):
        wm, net, listener, snode, marks = build(
            "(p r (control ^phase run) "
            "{ [item ^owner <o> ^v <v>] <Items> } "
            ":scalar (<o>) "
            ":test ((count <Items>) > 1) --> (halt))"
        )
        c, p, apvs, aces, test = snode.static_data()
        assert c == (0,)  # the scalar control CE
        assert p == ("o",)
        assert not apvs
        assert len(aces) == 1 and aces[0].op == "count"
        assert test is not None


class TestFindStage:
    def test_one_soi_per_group_key(self):
        wm, net, listener, snode, marks = build(
            "(p r (control ^phase run) [item ^v <v>] --> (halt))"
        )
        wm.make("control", phase="run")
        wm.make("item", v=1)
        wm.make("item", v=2)
        wm.make("control", phase="run")
        assert len(snode.gamma) == 2  # one SOI per control WME
        for entry in snode.gamma.values():
            assert len(entry.tokens) == 2

    def test_scalar_pv_partitions(self):
        wm, net, listener, snode, marks = build(
            "(p r [item ^owner <o>] :scalar (<o>) --> (halt))"
        )
        wm.make("item", owner="x")
        wm.make("item", owner="y")
        wm.make("item", owner="x")
        assert len(snode.gamma) == 2
        sizes = sorted(len(soi.tokens) for soi in snode.gamma.values())
        assert sizes == [1, 2]

    def test_tokens_ordered_like_conflict_set(self):
        wm, net, listener, snode, marks = build(
            "(p r [item ^v <v>] --> (halt))"
        )
        wm.make("item", v=1)
        wm.make("item", v=2)
        wm.make("item", v=3)
        (soi,) = snode.gamma.values()
        tags = [t.time_tags() for t in soi.tokens]
        assert tags == sorted(tags, reverse=True)  # head = most recent


class TestDecideStage:
    def test_new_soi_sends_plus(self):
        wm, net, listener, snode, marks = build(
            "(p r [item] --> (halt))"
        )
        wm.make("item")
        assert [mark for mark, _ in marks] == ["+"]
        (soi,) = snode.gamma.values()
        assert soi.status == ACTIVE

    def test_new_time_sends_time_when_active(self):
        wm, net, listener, snode, marks = build(
            "(p r [item] --> (halt))"
        )
        wm.make("item")
        wm.make("item")  # newest: inserted at head -> new-time
        assert [mark for mark, _ in marks] == ["+", "time"]

    def test_delete_sends_minus(self):
        wm, net, listener, snode, marks = build(
            "(p r [item] --> (halt))"
        )
        wme = wm.make("item")
        wm.remove(wme)
        assert [mark for mark, _ in marks] == ["+", "-"]
        assert not snode.gamma

    def test_head_removal_sends_time(self):
        wm, net, listener, snode, marks = build(
            "(p r [item] --> (halt))"
        )
        wm.make("item")
        head = wm.make("item")
        wm.remove(head)
        assert [mark for mark, _ in marks] == ["+", "time", "time"]

    def test_non_head_removal_is_silent(self):
        wm, net, listener, snode, marks = build(
            "(p r [item] --> (halt))"
        )
        older = wm.make("item")
        wm.make("item")
        marks.clear()
        wm.remove(older)  # same-time: no flow, content updated in place
        assert marks == []
        (soi,) = snode.gamma.values()
        assert len(soi.tokens) == 1


class TestTestExpression:
    SOURCE = (
        "(p r { [item] <Items> } :test ((count <Items>) > 1) --> (halt))"
    )

    def test_inactive_until_test_passes(self):
        wm, net, listener, snode, marks = build(self.SOURCE)
        wm.make("item")
        (soi,) = snode.gamma.values()
        assert soi.status == INACTIVE
        assert marks == []  # chg=new overwritten by fail; nothing flows
        wm.make("item")
        assert [mark for mark, _ in marks] == ["+"]
        assert soi.status == ACTIVE

    def test_fail_deactivates(self):
        wm, net, listener, snode, marks = build(self.SOURCE)
        first = wm.make("item")
        wm.make("item")
        marks.clear()
        wm.remove(first)  # count drops to 1 -> fail -> <S,->
        assert [mark for mark, _ in marks] == ["-"]
        (soi,) = snode.gamma.values()
        assert soi.status == INACTIVE

    def test_version_bumps_on_every_change(self):
        wm, net, listener, snode, marks = build(self.SOURCE)
        wm.make("item")
        (soi,) = snode.gamma.values()
        version = soi.version
        wm.make("item")
        assert soi.version == version + 1


class TestGammaMemoryShape:
    def test_triple_structure(self):
        wm, net, listener, snode, marks = build(
            "(p r { [item ^v <v>] <Items> } "
            ":test ((sum <Items> ^v) >= 5) --> (halt))"
        )
        wm.make("item", v=2)
        wm.make("item", v=4)
        [(tokens, status, av)] = snode.gamma_memory()
        assert len(tokens) == 2
        assert status == ACTIVE
        [(value, pairs)] = av
        assert value == 6
        assert sorted(pairs) == [(2, 1), (4, 1)]


class TestAggregateFlow:
    def test_min_max_test(self):
        wm, net, listener, snode, marks = build(
            "(p r { [reading ^temp <t>] <R> } "
            ":test ((max <R> ^temp) - (min <R> ^temp) > 10) --> (halt))"
        )
        wm.make("reading", temp=20)
        wm.make("reading", temp=25)
        assert not listener.live
        spike = wm.make("reading", temp=35)
        assert len(listener.live) == 1
        wm.remove(spike)
        assert not listener.live

    def test_avg_test_with_scalar_reference(self):
        wm, net, listener, snode, marks = build(
            "(p r (limit ^n <n>) { [reading ^temp <t>] <R> } "
            ":test ((avg <R> ^temp) > <n>) --> (halt))"
        )
        wm.make("limit", n=10)
        wm.make("reading", temp=9)
        assert not listener.live
        wm.make("reading", temp=20)  # avg 14.5 > 10
        assert len(listener.live) == 1


class TestSameTimeAmendment:
    """The documented divergence from Figure 3 as printed.

    A same-time insertion that flips the test true activates the SOI by
    default; with ``strict_paper_decide=True`` the figure's literal
    behaviour (stay inactive) is preserved.
    """

    def _drive(self, strict):
        wm, net, listener, snode, marks = build(
            "(p r { [pair ^k <k>] <P> } :scalar (<k>) "
            ":test ((count <P>) > 1) --> (halt))",
            strict=strict,
        )
        # One WM change that yields two tokens in one SOI is impossible
        # through plain makes (each make is one token), so drive the
        # S-node directly with synthetic tokens sharing a head tag.
        from repro.wm import WME

        newest = WME("pair", {"k": "g"}, 5)
        older = WME("pair", {"k": "g"}, 3)
        snode.token_added(_OneLevel(newest))
        soi = next(iter(snode.gamma.values()))
        assert soi.status == INACTIVE
        snode.token_added(_OneLevel(older))  # same-time: not at head
        return soi, marks

    def test_default_amendment_activates(self):
        soi, marks = self._drive(strict=False)
        assert soi.status == ACTIVE
        assert [mark for mark, _ in marks] == ["+"]

    def test_strict_paper_mode_stays_inactive(self):
        soi, marks = self._drive(strict=True)
        assert soi.status == INACTIVE
        assert marks == []


class _OneLevel:
    """Minimal token stub: one CE at level 0."""

    def __init__(self, wme):
        self._wme = wme

    def wme_at(self, level):
        return self._wme if level == 0 else None

    def time_tags(self):
        return (self._wme.time_tag,)
