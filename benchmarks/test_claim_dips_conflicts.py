"""Experiment C5 — §8.1 claim: tuple DIPS conflicts; set DIPS does not.

"Instantiations frequently conflict.  A special case of this is where
multiple instantiations of a single rule invalidate each other (e.g.
try to remove the same WME)."  One parallel duplicate-removal round is
executed under optimistic transactions in both formulations, sweeping
the duplicate-group size; the paper's prediction: the tuple conflict
rate grows with group size, the set-oriented rate is identically zero.
"""

from repro.bench import print_table
from repro.dips.concurrency import (
    remove_duplicates_set_firings,
    remove_duplicates_tuple_firings,
    run_concurrent_firings,
)
from repro.rdb import Database


def build_table(db, groups, group_size, name):
    table = db.create_table(name, ["name", "team"])
    for group in range(groups):
        for _ in range(group_size):
            table.insert({"name": f"p{group}", "team": "A"})
    return table


def one_round(groups, group_size):
    db = Database()
    tuple_table = build_table(db, groups, group_size, "wm_tuple")
    tuple_result = run_concurrent_firings(
        tuple_table, remove_duplicates_tuple_firings(tuple_table)
    )
    set_table = build_table(db, groups, group_size, "wm_set")
    set_result = run_concurrent_firings(
        set_table, remove_duplicates_set_firings(set_table)
    )
    return tuple_result, set_result, len(set_table)


def test_conflict_rate_sweep(benchmark):
    rows = []
    for group_size in (2, 3, 5, 8, 12):
        tuple_result, set_result, set_rows_left = one_round(
            groups=4, group_size=group_size
        )
        rows.append(
            (
                group_size,
                tuple_result.attempted,
                tuple_result.aborted,
                f"{tuple_result.conflict_rate:.2f}",
                set_result.attempted,
                set_result.aborted,
            )
        )
        # Set mode: one firing per group, zero conflicts, done in one
        # round.
        assert set_result.attempted == 4
        assert set_result.aborted == 0
        assert set_rows_left == 4
        if group_size >= 3:
            assert tuple_result.aborted > 0
    print_table(
        "C5 — one parallel firing round, duplicate removal "
        "(paper: tuple instantiations invalidate each other)",
        ["group size", "tuple firings", "tuple aborts",
         "tuple conflict rate", "set firings", "set aborts"],
        rows,
    )

    benchmark(one_round, 4, 8)


def test_conflict_rate_grows_with_group_size(benchmark):
    rates = []
    for group_size in (3, 6, 12):
        tuple_result, _, _ = one_round(groups=2, group_size=group_size)
        rates.append(tuple_result.conflict_rate)
    assert rates[0] < rates[-1]
    print_table(
        "C5 — tuple-mode conflict rate vs duplicate-group size",
        ["group size", "conflict rate"],
        list(zip((3, 6, 12), (f"{r:.2f}" for r in rates))),
    )

    benchmark(one_round, 2, 12)
