"""Shared helpers for the benchmark suite.

Run with::

    pytest benchmarks/ --benchmark-only -s

``-s`` lets the paper-style result tables print; EXPERIMENTS.md records
the rows produced this way next to what the paper reports.
"""

from __future__ import annotations

import pytest

from repro import RuleEngine
from repro.dips import DipsMatcher
from repro.match import NaiveMatcher, TreatMatcher
from repro.rete import ReteNetwork

MATCHERS = {
    "rete": ReteNetwork,
    "treat": TreatMatcher,
    "naive": NaiveMatcher,
    "dips": DipsMatcher,
}


@pytest.fixture
def engine_factory():
    def factory(matcher_name="rete"):
        return RuleEngine(matcher=MATCHERS[matcher_name]())

    return factory


def load_paper_roster(engine):
    engine.literalize("player", "name", "team")
    for team, name in [
        ("A", "Jack"), ("A", "Janice"),
        ("B", "Sue"), ("B", "Jack"), ("B", "Sue"),
    ]:
        engine.make("player", team=team, name=name)
