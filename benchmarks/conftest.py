"""Shared helpers for the benchmark suite.

Run with::

    pytest benchmarks/ --benchmark-only -s

``-s`` lets the paper-style result tables print; EXPERIMENTS.md records
the rows produced this way next to what the paper reports.
"""

from __future__ import annotations

import pytest

from repro import RuleEngine
from repro.dips import DipsMatcher
from repro.engine.stats import MatchStats
from repro.lang.parser import parse_rule
from repro.match import NaiveMatcher, TreatMatcher
from repro.match.base import NullListener
from repro.rete import ReteNetwork
from repro.wm import WorkingMemory

MATCHERS = {
    "rete": ReteNetwork,
    "treat": TreatMatcher,
    "naive": NaiveMatcher,
    "dips": DipsMatcher,
}


@pytest.fixture
def engine_factory():
    def factory(matcher_name="rete"):
        return RuleEngine(matcher=MATCHERS[matcher_name]())

    return factory


def build_stats_network(*rules, **network_kwargs):
    """A ``(wm, net, stats)`` triple with match-work counting enabled.

    The ablation benchmarks use this to report *work counters* (join
    tests, probes vs scans, token churn) next to wall-clock timings.
    Rules may be source strings or already-parsed rule objects.
    """
    stats = MatchStats()
    wm = WorkingMemory()
    net = ReteNetwork(stats=stats, **network_kwargs)
    net.set_listener(NullListener())
    net.attach(wm)
    for rule in rules:
        net.add_rule(parse_rule(rule) if isinstance(rule, str) else rule)
    return wm, net, stats


@pytest.fixture
def stats_network():
    return build_stats_network


def load_paper_roster(engine):
    engine.literalize("player", "name", "team")
    for team, name in [
        ("A", "Jack"), ("A", "Janice"),
        ("B", "Sue"), ("B", "Jack"), ("B", "Sue"),
    ]:
        engine.make("player", team=team, name=name)
