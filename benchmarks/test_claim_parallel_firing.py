"""Experiment C5b — mutual invalidation in the in-memory engine.

The C5 experiment measures the §8.1 conflict problem with DBMS
transactions; this one runs the same contrast through the engine's
parallel-cycle mode (:meth:`RuleEngine.run_parallel`): all eligible
instantiations of a cycle fire together, and an instantiation
invalidated by an earlier same-cycle firing counts as a conflict.
"""

from repro import RuleEngine
from repro.bench import print_table

TUPLE_DEDUP = """
(literalize rec key serial)
(p dedup
  (rec ^key <k> ^serial <s>)
  { (rec ^key <k> ^serial < <s>) <Old> }
  -->
  (remove <Old>))
"""

SET_DEDUP = """
(literalize rec key serial)
(p dedup
  { [rec ^key <k>] <R> }
  :scalar (<k>)
  :test ((count <R>) > 1)
  -->
  (bind <first> true)
  (foreach <R> descending
    (if (<first> == true)
      (bind <first> false)
     else
      (remove <R>))))
"""


def run(program, groups, copies):
    engine = RuleEngine()
    engine.load(program)
    for group in range(groups):
        for serial in range(copies):
            engine.make("rec", key=f"k{group}", serial=serial)
    cycles, fired, conflicted, _ = engine.run_parallel(
        max_cycles=50
    )
    assert len(engine.wm) == groups
    return cycles, fired, conflicted


def test_parallel_firing_conflicts(benchmark):
    rows = []
    for copies in (2, 4, 8):
        t_cycles, t_fired, t_conflicted = run(TUPLE_DEDUP, 3, copies)
        s_cycles, s_fired, s_conflicted = run(SET_DEDUP, 3, copies)
        rows.append(
            (
                copies,
                t_fired, t_conflicted, t_cycles,
                s_fired, s_conflicted, s_cycles,
            )
        )
        assert s_conflicted == 0
        assert s_fired == 3  # one SOI firing per duplicate group
        if copies >= 4:
            assert t_conflicted > 0
    print_table(
        "C5b — parallel-cycle dedup, 3 groups "
        "(tuple instantiations invalidate each other; SOIs never do)",
        ["copies/group", "tuple fired", "tuple conflicts",
         "tuple cycles", "set fired", "set conflicts", "set cycles"],
        rows,
    )

    benchmark(run, SET_DEDUP, 3, 8)


def test_wasted_match_work(benchmark):
    """Conflicted instantiations are pure waste the SOI never creates."""
    t_cycles, t_fired, t_conflicted = run(TUPLE_DEDUP, 1, 10)
    total = t_fired + t_conflicted
    rows = [
        ("instantiations produced", total),
        ("useful firings", t_fired),
        ("invalidated (wasted)", t_conflicted),
        ("SOI equivalent", 1),
    ]
    print_table(
        "C5b — one 10-copy duplicate group under parallel firing",
        ["metric", "value"],
        rows,
    )
    assert t_conflicted >= t_fired  # most of the work was wasted

    benchmark(run, TUPLE_DEDUP, 1, 10)
