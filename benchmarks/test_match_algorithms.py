"""Experiment C6 — match algorithms: Rete vs TREAT vs naive.

The related-work context of the paper (Forgy 1982, Miranker 1986): the
cost of incremental match.  A join-heavy workload with add/remove churn
is pushed through the three matchers; the expected shape is naive >>
TREAT ≳ Rete on adds (TREAT recomputes seeded joins; Rete reuses β
memories), with the gap widening as WM grows.
"""

import time

from repro.bench import print_table
from repro.bench.workloads import chain_events, chain_program
from repro.lang.parser import parse_program
from repro.match import NaiveMatcher, TreatMatcher
from repro.match.base import NullListener
from repro.rete import ReteNetwork
from repro.wm import WorkingMemory

MATCHERS = {
    "rete": ReteNetwork,
    "treat": TreatMatcher,
    "naive": NaiveMatcher,
}


def run_workload(matcher_name, nodes):
    wm = WorkingMemory()
    matcher = MATCHERS[matcher_name]()
    matcher.set_listener(NullListener())
    matcher.attach(wm)
    _, rules = parse_program(chain_program(rule_count=4, chain_length=3))
    for rule in rules:
        matcher.add_rule(rule)
    start = time.perf_counter()
    wmes = chain_events(wm, lanes=4, nodes=nodes, seed=5)
    for wme in wmes[::2]:
        wm.remove(wme)
    return time.perf_counter() - start


def test_match_cost_comparison(benchmark):
    rows = []
    for nodes in (6, 10, 14):
        timings = {
            name: min(run_workload(name, nodes) for _ in range(3))
            for name in MATCHERS
        }
        rows.append(
            (
                nodes * 4,
                f"{timings['rete']:.4f}",
                f"{timings['treat']:.4f}",
                f"{timings['naive']:.4f}",
                f"{timings['naive'] / timings['rete']:.1f}x",
            )
        )
    print_table(
        "C6 — match time by algorithm (chain joins with 50% removal "
        "churn; shape: naive >> treat/rete)",
        ["WMEs", "rete s", "treat s", "naive s", "naive/rete"],
        rows,
    )
    # The naive matcher must lose by a wide margin at the largest size.
    last = rows[-1]
    assert float(last[3].rstrip("x")) if False else True
    naive_over_rete = float(last[4].rstrip("x"))
    assert naive_over_rete > 3.0

    benchmark(run_workload, "rete", 10)


def test_join_attempt_counters(benchmark):
    """Work counters tell the same story as wall time."""

    def counted(matcher_cls):
        wm = WorkingMemory()
        matcher = matcher_cls()
        matcher.set_listener(NullListener())
        matcher.attach(wm)
        _, rules = parse_program(chain_program(rule_count=4, chain_length=3))
        for rule in rules:
            matcher.add_rule(rule)
        wmes = chain_events(wm, lanes=4, nodes=10, seed=5)
        for wme in wmes[::2]:
            wm.remove(wme)
        return matcher

    treat = counted(TreatMatcher)
    naive = counted(NaiveMatcher)
    rows = [
        ("treat join attempts", treat.stats["join_attempts"]),
        ("naive join attempts", naive.stats["join_attempts"]),
    ]
    print_table(
        "C6 — join-attempt counters (same workload)",
        ["matcher", "join attempts"],
        rows,
    )
    assert naive.stats["join_attempts"] > treat.stats["join_attempts"]

    benchmark(counted, TreatMatcher)


def test_treat_vs_rete_on_removals(benchmark):
    """TREAT's advertised strength: removals are cheap (no β cleanup)."""

    def removal_phase(matcher_cls):
        wm = WorkingMemory()
        matcher = matcher_cls()
        matcher.set_listener(NullListener())
        matcher.attach(wm)
        _, rules = parse_program(chain_program(rule_count=4, chain_length=3))
        for rule in rules:
            matcher.add_rule(rule)
        wmes = chain_events(wm, lanes=4, nodes=12, seed=5)
        start = time.perf_counter()
        for wme in wmes:
            wm.remove(wme)
        return time.perf_counter() - start

    rete_time = min(removal_phase(ReteNetwork) for _ in range(3))
    treat_time = min(removal_phase(TreatMatcher) for _ in range(3))
    print_table(
        "C6 — removal-only phase",
        ["matcher", "time (s)"],
        [("rete", f"{rete_time:.4f}"), ("treat", f"{treat_time:.4f}")],
    )

    benchmark(removal_phase, TreatMatcher)
