"""Ablation — DESIGN.md design choice: query-plan optimisation for DIPS.

Section 8's pitch is that set-oriented matching lets the DBMS "exercise
its strengths".  The rdb planner (hash joins + filter pushdown) is that
strength; this ablation measures the Figure 6-shaped SOI query with and
without the rewrites as the COND tables grow.
"""

import time

from repro.bench import print_table
from repro.rdb import Database, plan_counters, run_sql


def build_cond_tables(db, size):
    run_sql(db, 'CREATE TABLE "COND-E" (rule_id str, cen int, name str, '
                "salary int, wme_tag int)")
    run_sql(db, 'CREATE TABLE "COND-W" (rule_id str, cen int, name str, '
                "job str, wme_tag int)")
    cond_e = db.table("COND-E")
    cond_w = db.table("COND-W")
    for index in range(size):
        cond_e.insert({
            "rule_id": "rule-1", "cen": 1, "name": f"emp{index}",
            "salary": 1000 + index, "wme_tag": 2 * index + 1,
        })
        cond_w.insert({
            "rule_id": "rule-1", "cen": 2, "name": f"emp{index}",
            "job": "clerk", "wme_tag": 2 * index + 2,
        })


SOI_SQL = (
    'SELECT e.wme_tag AS tag_1, COLLECT(w.wme_tag) AS tags_2 '
    'FROM "COND-E" AS e, "COND-W" AS w '
    "WHERE e.rule_id = 'rule-1' AND e.cen = 1 "
    "AND w.rule_id = 'rule-1' AND w.cen = 2 "
    "AND e.wme_tag IS NOT NULL AND w.wme_tag IS NOT NULL "
    "AND e.name = w.name GROUP BY e.wme_tag"
)


def timed_query(size, optimize):
    db = Database()
    build_cond_tables(db, size)
    with plan_counters() as work:
        start = time.perf_counter()
        rows = run_sql(db, SOI_SQL, optimize=optimize)
        elapsed = time.perf_counter() - start
    assert len(rows) == size
    return elapsed, work


def test_hash_join_ablation(benchmark):
    rows = []
    for size in (50, 100, 200, 400):
        nested, nested_work = min(
            (timed_query(size, optimize=False) for _ in range(3)),
            key=lambda r: r[0],
        )
        hashed, hashed_work = min(
            (timed_query(size, optimize=True) for _ in range(3)),
            key=lambda r: r[0],
        )
        # The planner's win is visible as work, not only time: the
        # nested loop examines the full cross product while the hash
        # join probes exactly the matching bucket per row.
        assert hashed_work.pairs_examined < nested_work.pairs_examined
        assert nested_work.pairs_examined >= size * size
        assert hashed_work.probe_hits == size
        rows.append(
            (
                size,
                f"{nested:.4f}",
                f"{hashed:.4f}",
                nested_work.pairs_examined,
                hashed_work.pairs_examined,
                f"{nested / hashed:.1f}x",
            )
        )
    print_table(
        "Ablation — SOI query: nested-loop vs planner "
        "(hash join + pushdown)",
        ["COND rows/side", "nested loop s", "optimised s",
         "nested pairs", "hashed pairs", "speedup"],
        rows,
    )
    # The nested loop is quadratic; at 400 rows the planner must win big.
    assert float(rows[-1][5].rstrip("x")) > 5.0

    benchmark(timed_query, 200, True)


def test_results_identical_under_ablation(benchmark):
    db = Database()
    build_cond_tables(db, 60)
    with_opt = run_sql(db, SOI_SQL, optimize=True)
    without = run_sql(db, SOI_SQL, optimize=False)
    key = lambda r: r["tag_1"]
    assert sorted(with_opt, key=key) == sorted(without, key=key)

    benchmark(run_sql, db, SOI_SQL)
