"""Experiment C1 — §1/§5 claim: no regression for plain OPS5 programs.

"The introduction of the set-oriented changes was made in a way that
does not degrade the performance when executing regular OPS5
programs."  Here: run a join-heavy tuple-only workload through the
extended network (a) alone and (b) with set-oriented rules also
compiled in but never triggered (different WME classes).  Because the
alpha network dispatches by class and S-nodes sit after the terminal
joins of *their own* rules, per-event cost must be indistinguishable.
"""

import time

from repro.bench import print_table
from repro.bench.workloads import chain_events, chain_program
from repro.lang.parser import parse_program, parse_rule
from repro.match.base import NullListener
from repro.rete import ReteNetwork
from repro.wm import WorkingMemory

IDLE_SET_RULES = [
    "(p idle-set-{i} [setclass-{i} ^v <v>] "
    ":test ((count <v>) > 1000) --> (write x))"
]


def build_network(with_set_rules, stats=None):
    wm = WorkingMemory()
    net = ReteNetwork(stats=stats)
    net.set_listener(NullListener())
    net.attach(wm)
    _, rules = parse_program(chain_program(rule_count=6, chain_length=3))
    for rule in rules:
        net.add_rule(rule)
    if with_set_rules:
        for index in range(6):
            net.add_rule(
                parse_rule(
                    f"(p idle-set-{index} "
                    f"{{ [setclass-{index} ^v <v>] <S> }} "
                    f":test ((count <S>) > 1000) --> (write x))"
                )
            )
    return wm, net


def run_workload(wm, nodes=10):
    wmes = chain_events(wm, lanes=6, nodes=nodes, seed=3)
    for wme in wmes:
        wm.remove(wme)


def measure(with_set_rules, repeats=5, nodes=10, stats_factory=None):
    best = float("inf")
    for _ in range(repeats):
        stats = stats_factory() if stats_factory is not None else None
        wm, net = build_network(with_set_rules, stats=stats)
        start = time.perf_counter()
        run_workload(wm, nodes)
        best = min(best, time.perf_counter() - start)
    return best


def test_no_regression_table(benchmark):
    plain = measure(with_set_rules=False)
    extended = measure(with_set_rules=True)
    overhead = (extended / plain - 1.0) * 100 if plain else 0.0
    print_table(
        "C1 — plain-OPS5 workload on the extended network "
        "(paper claim: no degradation)",
        ["configuration", "best time (s)", "overhead vs plain (%)"],
        [
            ("tuple rules only", f"{plain:.5f}", "0.0"),
            ("tuple + idle set rules", f"{extended:.5f}",
             f"{overhead:.1f}"),
        ],
    )
    # Generous bound: anything near-zero validates the claim; 50%
    # headroom keeps CI noise from flaking the suite.
    assert extended < plain * 1.5

    benchmark(run_workload, build_network(True)[0])


def test_stats_hook_when_disabled_is_null(benchmark):
    """Instrumentation off (the default) means the shared NULL_STATS
    no-op singleton on every hot path — the ≤2%-overhead budget of the
    observability layer rests on this being the default wiring."""
    from repro.engine.stats import NULL_STATS, MatchStats

    wm, net = build_network(True)
    assert net.match_stats is NULL_STATS
    assert net.alpha.stats is NULL_STATS
    assert net.dummy_top.stats is NULL_STATS

    disabled = measure(with_set_rules=True)
    enabled = measure(with_set_rules=True, stats_factory=MatchStats)
    overhead = (enabled / disabled - 1.0) * 100 if disabled else 0.0
    print_table(
        "C1 — match-stats instrumentation cost on the plain workload",
        ["configuration", "best time (s)", "overhead (%)"],
        [
            ("stats disabled (NULL_STATS)", f"{disabled:.5f}", "0.0"),
            ("stats enabled (MatchStats)", f"{enabled:.5f}",
             f"{overhead:.1f}"),
        ],
    )
    # Even fully enabled the counters must stay in the same ballpark;
    # disabled is the measured default path asserted identical above.
    assert enabled < disabled * 3

    benchmark(lambda: measure(with_set_rules=True, repeats=1))


def test_match_stats_identical(benchmark):
    """Token/activation counts for the tuple rules are unchanged."""
    wm_plain, net_plain = build_network(False)
    run_workload(wm_plain)
    wm_ext, net_ext = build_network(True)
    run_workload(wm_ext)
    rows = [
        (name, getattr(net_plain.stats, name), getattr(net_ext.stats, name))
        for name in (
            "tokens_created", "tokens_deleted", "right_activations",
        )
    ]
    print_table(
        "C1 — match-effort counters, plain vs extended network",
        ["counter", "plain", "extended"],
        rows,
    )
    for _, plain_value, ext_value in rows:
        assert plain_value == ext_value

    benchmark(lambda: build_network(True))
