"""Experiment C7 — memory-based vs DBMS-based matching cost.

The paper positions set-oriented constructs as helping "both the
traditional memory-based systems and the emerging disk-based ones".
This bench quantifies the gap our substrate exhibits between the two
ends: per-event match cost of Rete (in-memory dataflow) versus the
DIPS matcher (COND-table updates + SQL SOI queries) on the same
program — and shows that set-oriented grouping costs the DBMS back end
nothing extra (the grouping *is* the query's GROUP BY).
"""

import time

from repro import RuleEngine
from repro.bench import print_table
from repro.dips import DipsMatcher
from repro.rete import ReteNetwork

PROGRAM = """
(literalize E name salary)
(literalize W name job)
(p pairs
  (E ^name <x> ^salary <s>)
  { [W ^name <x> ^job clerk] <Jobs> }
  :test ((count <Jobs>) >= 1)
  -->
  (write x))
"""


def feed(engine, size):
    start = time.perf_counter()
    for index in range(size):
        engine.make("W", name=f"emp{index % 10}", job="clerk")
        engine.make("E", name=f"emp{index % 10}", salary=1000 + index)
    return time.perf_counter() - start


def run_config(matcher_factory, size):
    engine = RuleEngine(matcher=matcher_factory())
    engine.load(PROGRAM)
    elapsed = feed(engine, size)
    return elapsed, engine.conflict_set_size()


def test_rete_vs_dips_per_event(benchmark):
    rows = []
    for size in (10, 20, 40):
        rete_time, rete_cs = run_config(ReteNetwork, size)
        dips_time, dips_cs = run_config(DipsMatcher, size)
        assert rete_cs == dips_cs  # identical conflict sets
        rows.append(
            (
                size * 2,
                f"{rete_time * 1e3:.2f}",
                f"{dips_time * 1e3:.2f}",
                f"{dips_time / rete_time:.0f}x",
            )
        )
    print_table(
        "C7 — same program, memory-based (Rete) vs DBMS-based (DIPS) "
        "matching",
        ["WM events", "rete ms", "dips ms", "dips/rete"],
        rows,
    )
    # The DBMS back end re-queries per event: orders of magnitude
    # slower per event, which is why DIPS batches set-at-a-time — and
    # why the paper wants rules that let it do MORE per match.
    assert float(rows[-1][3].rstrip("x")) > 2

    benchmark(run_config, ReteNetwork, 20)


def test_dips_grouping_is_free(benchmark):
    """Grouped (set) and ungrouped (tuple) retrieval cost the same."""
    tuple_program = PROGRAM.replace(
        "{ [W ^name <x> ^job clerk] <Jobs> }\n  "
        ":test ((count <Jobs>) >= 1)",
        "(W ^name <x> ^job clerk)",
    )

    def run(program):
        engine = RuleEngine(matcher=DipsMatcher())
        engine.load(program)
        return feed(engine, 20)

    set_time = min(run(PROGRAM) for _ in range(3))
    tuple_time = min(run(tuple_program) for _ in range(3))
    print_table(
        "C7 — DIPS: tuple vs set-oriented rule, same data",
        ["formulation", "time (ms)"],
        [
            ("tuple-oriented", f"{tuple_time * 1e3:.2f}"),
            ("set-oriented", f"{set_time * 1e3:.2f}"),
        ],
    )
    # Within noise of each other: grouping rides the same query.
    assert set_time < tuple_time * 3

    benchmark(run, PROGRAM)
