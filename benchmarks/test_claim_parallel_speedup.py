"""Experiment C3b — §1 claim, quantified: parallelism from set firings.

The cost model of :mod:`repro.engine.parallel` schedules each firing's
WM actions on P workers (same-element actions chain; firings stay
sequential).  The paper's prediction: the tuple formulation exposes no
intra-firing parallelism (one action per firing), while the
set-oriented formulation's speedup scales with the set size.
"""

from repro import RuleEngine
from repro.bench import print_table
from repro.bench.workloads import process_set_program, process_tuple_program
from repro.engine.parallel import run_latency, speedup

SIZE = 128
WORKERS = (1, 2, 4, 8, 16, 32, 64)


def traced_run(loader):
    engine = RuleEngine()
    loader(engine, SIZE)
    engine.run(limit=SIZE * 3 + 10)
    return engine.tracer


def test_parallel_speedup_sweep(benchmark):
    tuple_trace = traced_run(process_tuple_program)
    set_trace = traced_run(process_set_program)
    rows = []
    for workers in WORKERS:
        rows.append(
            (
                workers,
                run_latency(tuple_trace, workers),
                f"{speedup(tuple_trace, workers):.2f}",
                run_latency(set_trace, workers),
                f"{speedup(set_trace, workers):.2f}",
            )
        )
    print_table(
        f"C3b — modelled schedule length / speedup, N = {SIZE} "
        "(paper: set firings provide the parallelism)",
        ["workers", "tuple latency", "tuple speedup",
         "set latency", "set speedup"],
        rows,
    )
    # Tuple: flat at 1.0x.  Set: grows toward the set size.
    assert speedup(tuple_trace, 64) == 1.0
    assert speedup(set_trace, 64) > 30

    benchmark(traced_run, process_set_program)


def test_speedup_bounded_by_dependency_chains(benchmark):
    """A rule touching ONE element many times cannot parallelise."""
    engine = RuleEngine()
    engine.load(
        """
        (literalize counter n)
        (p bump (counter ^n <v> ^n < 10) --> (modify 1 ^n (<v> + 1)))
        """
    )
    engine.make("counter", n=0)
    engine.run(limit=20)
    assert speedup(engine.tracer, 16) == 1.0
    print_table(
        "C3b — dependency-chained workload (no parallelism available)",
        ["workers", "latency"],
        [(w, run_latency(engine.tracer, w)) for w in (1, 4, 16)],
    )

    benchmark(traced_run, process_tuple_program)
