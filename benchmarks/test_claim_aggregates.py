"""Experiment C4 — §4.2 claim: direct aggregate match beats iteration.

"If an OPS5 program needs to act based on the cardinality of a set ...
it needs to cycle through all the members of that set calculating the
second order value.  With aggregate operators, this value can be
directly accessed" — and stays current: "the value is not
automatically updated when the size of the collection changes" in the
counter-WME formulation.
"""

import time

from repro import RuleEngine
from repro.bench import print_table
from repro.bench.workloads import (
    cardinality_set_program,
    cardinality_tuple_program,
)

SIZES = (10, 50, 150)


def run_cardinality(loader, size):
    engine = RuleEngine()
    loader(engine, size)
    start = time.perf_counter()
    fired = engine.run(limit=size * 2 + 10)
    elapsed = time.perf_counter() - start
    assert engine.wm.find("verdict", reached="true")
    return fired, elapsed


def test_firings_to_detect_cardinality(benchmark):
    rows = []
    for size in SIZES:
        tuple_fired, tuple_time = run_cardinality(
            cardinality_tuple_program, size
        )
        set_fired, set_time = run_cardinality(cardinality_set_program, size)
        rows.append(
            (size, tuple_fired, set_fired,
             f"{tuple_time:.4f}", f"{set_time:.4f}")
        )
        assert tuple_fired == size + 1  # N count-one + 1 check
        assert set_fired == 1
    print_table(
        "C4 — firings until the cardinality threshold is detected "
        "(paper: iterate-and-count vs direct (count ...))",
        ["N", "tuple firings", "set firings", "tuple s", "set s"],
        rows,
    )

    benchmark(run_cardinality, cardinality_set_program, 100)


def test_aggregate_stays_current(benchmark):
    """The incremental count tracks removals with no extra rules."""
    engine = RuleEngine()
    engine.load(
        """
        (literalize item counted value)
        (p big-enough
          { [item] <Items> }
          -(verdict)
          :test ((count <Items>) >= 5)
          -->
          (make verdict ^reached true))
        (literalize verdict reached)
        """
    )
    wmes = [engine.make("item", counted="no", value=i) for i in range(4)]
    assert engine.conflict_set_size() == 0
    engine.make("item", counted="no", value=99)
    assert engine.conflict_set_size() == 1  # count crossed 5
    engine.remove(wmes[0])
    assert engine.conflict_set_size() == 0  # and dropped back

    rows = [
        ("count reaching 5 activates", "yes"),
        ("removal below 5 deactivates", "yes"),
        ("extra counter WMEs needed", 0),
        ("extra counting rules needed", 0),
    ]
    print_table("C4 — incremental aggregate liveness", ["check", "result"],
                rows)

    def churn():
        engine2 = RuleEngine()
        cardinality_set_program(engine2, 50)
        for wme in list(engine2.wm.of_class("item"))[:25]:
            engine2.remove(wme)

    benchmark(churn)
