#!/usr/bin/env python
"""Benchmark regression gate: match-work counters vs. a committed baseline.

Runs a fixed set of deterministic scenarios with :class:`MatchStats`
attached, writes the counters (plus informational wall-clock timings)
to ``BENCH_9.json``, and — under ``--check`` — fails if any gated work
counter regressed more than 10% against the newest committed
``benchmarks/BENCH_<n>.json`` report (falling back to
``benchmarks/BENCH_baseline.json`` when none exists; a clear error and
exit code 2 when there is no baseline at all).

The ``kernel_*`` scenarios benchmark the compiled match kernels
(``docs/KERNELS.md``): 10k- and 100k-WME bulk loads plus an
incremental-update run, each at kernels ``off`` (interpreted),
``closure``, and ``exec``.  The runner refuses to write a report
unless all three modes produced identical firings, conflict sets, and
outputs; the ``kernels.speedup_vs_off`` section records the wall-clock
ratios, and ``kernels_compiled`` / ``kernel_cache_hits`` are gated
exactly so a silently-lost compilation fails the build.

The ``storage_1m_*`` scenarios exercise the relational substrate
itself: one million WMEs streamed through :class:`CondStore` in
batched set-oriented statements, ten thousand incremental updates,
and one grouped SOI-retrieval query — once on the memory backend and
once on sqlite with native SQL pushdown.  Their gated counters are
statement and row counts (exact on any machine); the recorded timings
document the §8 claim that grouped retrieval belongs in the database.

Only *work counters* are gated (join activations, join tests, alpha
activations, index/group probes): they are exact and machine
independent, unlike timings, which are recorded in the report but never
compared.  Counter *improvements* beyond 10% are reported as a hint to
refresh the baseline with ``--write-baseline``.

Usage::

    python benchmarks/bench_report.py                  # report only
    python benchmarks/bench_report.py --check          # gate vs baseline
    python benchmarks/bench_report.py --write-baseline # refresh baseline
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro import MatchStats, RuleEngine
from repro.rete import ReteNetwork, ShardedReteNetwork

BASELINE_PATH = Path(__file__).parent / "BENCH_baseline.json"
DEFAULT_OUTPUT = Path("BENCH_10.json")


def latest_reference(exclude=None):
    """The newest committed ``BENCH_<n>.json``, else the baseline.

    Committed numbered reports carry the same counter payload as the
    baseline, so the gate always compares against the most recent
    accepted run rather than a stale hand-written baseline.  ``exclude``
    skips the report the current run just wrote — gating a report
    against itself always passes.  Returns ``None`` when neither a
    numbered report nor the baseline file exists — callers must handle
    that explicitly rather than trip over a missing file
    mid-comparison.
    """
    exclude = exclude.resolve() if exclude is not None else None
    best = None
    for path in BASELINE_PATH.parent.glob("BENCH_*.json"):
        if exclude is not None and path.resolve() == exclude:
            continue
        stem = path.stem[len("BENCH_"):]
        if stem.isdigit() and (best is None or int(stem) > best[0]):
            best = (int(stem), path)
    if best is not None:
        return best[1]
    return BASELINE_PATH if BASELINE_PATH.exists() else None

# Work counters held to the +/-10% gate.  Everything in
# MatchStats.totals lands in the report; only these fail the build.
GATED_COUNTERS = (
    "right_activations",
    "left_activations",
    "join_tests_attempted",
    "alpha_activations",
    "index_probes",
    "group_probes",
    "snode_batch_reevals",
    # Storage-backend scenarios: exact statement/row counts.
    "storage_batch_statements",
    "storage_cond_rows",
    "storage_soi_groups",
    "storage_soi_rows",
    "storage_statements_pushed",
    # Kernel scenarios: compilation and cache behaviour are structural.
    "kernels_compiled",
    "kernel_cache_hits",
    # Service scenarios: request/ingest/firing volume is deterministic
    # for a fixed fleet; compile counts prove rule-base sharing.
    "service_requests",
    "service_facts_ingested",
    "service_firings",
    "service_rulebase_compiles",
    "service_sessions_built",
    # Chaos scenario: exactly-once semantics make ingest/firing totals
    # deterministic even under seeded fault injection.
    "service_chaos_facts_ingested",
    "service_chaos_firings",
    # Hot-reload scenario: N tenants replacing the same rule fork one
    # rule base and compile the new kernels once — never N times.
    "service_reload_rulebase_compiles",
    "service_reload_forks",
    "service_reload_sessions_built",
    "service_reload_kernels_compiled",
    "service_reload_firings",
)
# Deterministic counters that must match the baseline *exactly*:
# losing native pushdown shows as a decrease, which the one-sided
# tolerance gate would misread as an improvement — and a silently-lost
# kernel compilation likewise shows as kernels_compiled dropping.
EXACT_COUNTERS = (
    "storage_statements_pushed",
    "kernels_compiled",
    "kernel_cache_hits",
    # N sessions of one program must cost exactly one parse/compile.
    "service_rulebase_compiles",
    "service_sessions_built",
    # Keyed retries must dedup: any drift here is a lost or
    # double-applied batch, not noise.
    "service_chaos_facts_ingested",
    "service_chaos_firings",
    # Copy-on-write reload: one compile, one fork, N sessions — drift
    # in any direction means the sharing contract broke.
    "service_reload_rulebase_compiles",
    "service_reload_forks",
    "service_reload_sessions_built",
    "service_reload_kernels_compiled",
    "service_reload_firings",
)
TOLERANCE = 0.10

PROGRAM = """
(literalize dept name)
(literalize emp name dept salary)
(p dept-size
  (dept ^name <d>)
  { [emp ^dept <d>] <staff> }
  :test ((count <staff>) >= 1)
  -->
  (write staffed <d> (count <staff>)))
"""

N_EMPLOYEES = 2_000
N_DEPTS = 20


def _engine(batched):
    stats = MatchStats()
    engine = RuleEngine(matcher=ReteNetwork(batched=batched), stats=stats)
    engine.load(PROGRAM)
    for d in range(N_DEPTS):
        engine.make("dept", name=f"d{d}")
    return engine, stats


def _facts(count=N_EMPLOYEES):
    return [
        ("emp", {
            "name": f"e{i}",
            "dept": f"d{i % N_DEPTS}",
            "salary": 1000 + (i % 997),
        })
        for i in range(count)
    ]


def scenario_bulk_load_per_event():
    engine, stats = _engine(batched=False)
    for wme_class, values in _facts():
        engine.make(wme_class, **values)
    engine.run()
    return stats


def scenario_bulk_load_batched():
    engine, stats = _engine(batched=True)
    engine.load_facts(_facts())
    engine.run()
    return stats


def scenario_churn_batched():
    engine, stats = _engine(batched=True)
    staff = engine.load_facts(_facts(600))
    engine.run()
    with engine.batch():
        for i, wme in enumerate(staff):
            if i % 3 == 0:
                engine.remove(wme)
            elif i % 3 == 1:
                engine.modify(wme, salary=wme.get("salary") + 1)
            else:
                scratch = engine.make(
                    "emp", name=f"tmp{i}", dept=wme.get("dept"), salary=0
                )
                engine.remove(scratch)
    engine.run()
    return stats


def scenario_sharded_match():
    # Sharded propagation runs serially while MatchStats is attached,
    # so these counters are deterministic and gateable: sharding must
    # perform exactly the work of the plain network, just partitioned.
    stats = MatchStats()
    engine = RuleEngine(
        matcher=ShardedReteNetwork(shards=SHARD_COUNT), stats=stats
    )
    engine.load(SHARD_PROGRAM)
    for d in range(N_DEPTS):
        engine.make("dept", name=f"d{d}")
    engine.load_facts(_facts())
    engine.run()
    engine.close()
    return stats


# -- storage-backend scenarios (out-of-core DIPS, ISSUE PR 6) -------------

N_STORAGE_WMES = 1_000_000
STORAGE_CHUNK = 20_000
N_STORAGE_UPDATES = 10_000
STORAGE_UPDATE_CHUNK = 100
N_STORAGE_OWNERS = 1_000

STORAGE_RULES = (
    "(p probe (item ^owner <o> ^v <v>) --> (halt))",
    "(p hot (item ^owner o1 ^v <v>) --> (halt))",
)

STORAGE_RETRIEVAL = (
    "SELECT owner, COUNT(*) AS n FROM \"COND-item\" "
    "WHERE wme_tag IS NOT NULL AND rule_id = 'probe' GROUP BY owner"
)


class _BenchWme:
    """Minimal WME protocol (class, tag, get) for CondStore streaming."""

    __slots__ = ("wme_class", "time_tag", "_values")

    def __init__(self, tag, owner, v):
        self.wme_class = "item"
        self.time_tag = tag
        self._values = {"owner": owner, "v": v}

    def get(self, attribute):
        return self._values.get(attribute, "nil")


class _BenchEvent:
    __slots__ = ("is_add", "wme")

    def __init__(self, is_add, wme):
        self.is_add = is_add
        self.wme = wme


def _storage_scenario(backend):
    """1M-WME bulk load + incremental updates + grouped retrieval."""
    from repro.dips.cond import CondStore
    from repro.lang.parser import parse_rule
    from repro.rdb.sql import run_sql

    stats = MatchStats()
    store = CondStore(backend=backend)
    for source in STORAGE_RULES:
        store.add_rule(parse_rule(source))
    statements = 0
    load_start = time.perf_counter()
    for base in range(0, N_STORAGE_WMES, STORAGE_CHUNK):
        statements += store.apply_batch([
            _BenchEvent(True, _BenchWme(
                base + i + 1,
                f"o{(base + i) % N_STORAGE_OWNERS}",
                (base + i) % 97,
            ))
            for i in range(STORAGE_CHUNK)
        ])
    load_elapsed = time.perf_counter() - load_start
    update_start = time.perf_counter()
    for base in range(0, N_STORAGE_UPDATES, STORAGE_UPDATE_CHUNK):
        events = []
        for i in range(STORAGE_UPDATE_CHUNK):
            old_tag = base + i + 1
            events.append(_BenchEvent(False, _BenchWme(old_tag, "", 0)))
            events.append(_BenchEvent(True, _BenchWme(
                N_STORAGE_WMES + old_tag,
                f"o{old_tag % N_STORAGE_OWNERS}",
                old_tag % 97,
            )))
        statements += store.apply_batch(events)
    update_elapsed = time.perf_counter() - update_start
    retrieve_start = time.perf_counter()
    groups = run_sql(store.db, STORAGE_RETRIEVAL)
    retrieve_elapsed = time.perf_counter() - retrieve_start

    # These are report counters, not matcher-event totals, so they go
    # straight into .totals (what run_scenarios records).
    stats.totals["storage_batch_statements"] = statements
    stats.totals["storage_cond_rows"] = len(store.cond_table("item"))
    stats.totals["storage_soi_groups"] = len(groups)
    stats.totals["storage_soi_rows"] = sum(row["n"] for row in groups)
    stats.totals["storage_statements_pushed"] = getattr(
        store.db.backend, "statements_pushed", 0
    )
    # Informational timings (never gated, machine dependent).
    stats.totals["storage_load_ms"] = int(load_elapsed * 1000)
    stats.totals["storage_update_ms"] = int(update_elapsed * 1000)
    stats.totals["storage_retrieve_ms"] = int(retrieve_elapsed * 1000)
    store.db.close()
    return stats


def scenario_storage_1m_memory():
    from repro.rdb.memory_backend import MemoryBackend

    return _storage_scenario(MemoryBackend())


def scenario_storage_1m_sqlite():
    from repro.rdb.sqlite_backend import SqliteBackend

    return _storage_scenario(SqliteBackend())


# -- compiled-kernel scenarios (off vs closure vs exec, ISSUE PR 7) -------
#
# Match-work-dominated runs: multi-constant-test alpha chains most WMEs
# fail, an indexed join with a residual test, a *non-indexed* join (no
# equality test, so left activations scan the whole — columnar — alpha
# memory), and a negated CE.  Set-oriented rules keep the firing count
# tiny, so wall clock measures the match kernels, not the RHS.  The
# runner asserts the three modes produce identical firings, conflict
# sets, and outputs before the report is written.

KERNEL_PROGRAM = """
(literalize order dept status priority qty)
(literalize dept name cap)
(p open-volume
  (dept ^name <d>)
  { [order ^dept <d> ^status open ^priority > 5] <S> }
  :test ((count <S>) >= 1)
  -->
  (write open <d> (count <S>)))
(p over-cap
  (dept ^cap <c>)
  { [order ^status held ^qty > <c>] <B> }
  :test ((count <B>) >= 1)
  -->
  (write over (count <B>)))
(p all-quiet
  (dept ^name <d>)
  -(order ^dept <d> ^status open ^priority > 8)
  -->
  (write quiet <d>))
"""

N_KERNEL_SMALL = 10_000
N_KERNEL_LARGE = 100_000
N_KERNEL_UPDATES = 2_000

#: (scenario label) -> (firings, eligible conflict order, write output);
#: filled by the kernel scenarios, checked identical across modes.
_KERNEL_OUTCOMES = {}


def _kernel_facts(count):
    statuses = ("open", "closed", "held", "void", "hold2")
    return [
        ("order", {
            "dept": f"d{i % N_DEPTS}",
            "status": statuses[i % len(statuses)],
            "priority": i % 10,
            "qty": i % 97,
        })
        for i in range(count)
    ]


def _kernel_engine(mode):
    stats = MatchStats()
    engine = RuleEngine(
        matcher=ReteNetwork(batched=True, kernels=mode), stats=stats
    )
    engine.load(KERNEL_PROGRAM)
    return engine, stats


def _kernel_depts(engine):
    # Depts load *after* the orders: each dept token then left-activates
    # the joins, so the non-indexed CEs scan the (columnar) order
    # memories — the path the scan kernels compile.
    for d in range(N_DEPTS):
        engine.make("dept", name=f"d{d}", cap=90 + (d % 5))


def _record_outcome(label, mode, engine):
    outcome = (
        engine.cycle_count,
        [
            (inst.rule.name, inst.recency_key())
            for inst in engine.conflict_set.ordered(engine.strategy)
        ],
        engine.output,
    )
    _KERNEL_OUTCOMES.setdefault(label, {})[mode] = outcome


def _kernel_bulk(mode, count, label):
    engine, stats = _kernel_engine(mode)
    engine.load_facts(_kernel_facts(count))
    _kernel_depts(engine)
    engine.run()
    _record_outcome(label, mode, engine)
    return stats


def _kernel_incremental(mode, label):
    engine, stats = _kernel_engine(mode)
    orders = engine.load_facts(_kernel_facts(N_KERNEL_SMALL))
    _kernel_depts(engine)
    engine.run()
    with engine.batch():
        for i in range(N_KERNEL_UPDATES):
            wme = orders[(i * 7) % len(orders)]
            if wme not in engine.wm:
                continue
            orders.append(engine.modify(
                wme,
                status="open" if i % 2 else "held",
                priority=(i % 10),
            ))
    engine.run()
    _record_outcome(label, mode, engine)
    return stats


def _kernel_scenarios():
    scenarios = {}
    for mode in ("off", "closure", "exec"):
        for label, count in (
            ("kernel_bulk_load_10k", N_KERNEL_SMALL),
            ("kernel_bulk_load_100k", N_KERNEL_LARGE),
        ):
            scenarios[f"{label}_{mode}"] = (
                lambda mode=mode, count=count, label=label:
                _kernel_bulk(mode, count, label)
            )
        scenarios[f"kernel_incremental_{mode}"] = (
            lambda mode=mode: _kernel_incremental(
                mode, "kernel_incremental"
            )
        )
    return scenarios


def verify_kernel_equivalence():
    """Every kernel scenario must be result-identical across modes.

    Raises ``SystemExit`` on divergence: a report documenting a speedup
    is meaningless if the modes did different work.
    """
    for label, by_mode in _KERNEL_OUTCOMES.items():
        baseline = by_mode.get("off")
        for mode, outcome in by_mode.items():
            if outcome != baseline:
                raise SystemExit(
                    f"kernel scenario {label}: mode {mode} diverged "
                    f"from the interpreter (firings/conflict/output)"
                )


def kernel_speedups(report):
    """off/<mode> wall-clock ratios per kernel scenario family."""
    scenarios = report["scenarios"]
    speedups = {}
    for label in ("kernel_bulk_load_10k", "kernel_bulk_load_100k",
                  "kernel_incremental"):
        off = scenarios.get(f"{label}_off", {}).get("elapsed_s")
        if not off:
            continue
        for mode in ("closure", "exec"):
            elapsed = scenarios.get(f"{label}_{mode}", {}).get("elapsed_s")
            if elapsed:
                speedups[f"{label}_{mode}"] = round(off / elapsed, 3)
    return speedups


# -- service scenarios -------------------------------------------------
#
# Each one boots an in-process rule service and drives it with the
# load generator: N concurrent sessions x assert/run ticks.  The work
# counters (requests, facts, firings) are deterministic for a fixed
# fleet; the rule-base counters pin the sharing contract — however
# many sessions, one compile per distinct (program, matcher, kernels).
# Wall-clock throughput and latency percentiles are recorded in the
# report's informational ``service`` section, never gated.

SERVICE_SESSIONS = 8
SERVICE_TICKS = 5
SERVICE_FACTS = 40
_SERVICE_RESULTS = {}


class _ServiceCounters:
    """Adapter giving loadgen results the ``.totals`` shape the
    scenario runner records."""

    def __init__(self, totals):
        self.totals = totals


def _service_scenario(label, matchers):
    from repro.service.loadgen import run_load
    from repro.service.server import ServiceConfig, ServiceThread

    with ServiceThread(ServiceConfig(port=0, engine_workers=4)) as server:
        host, port = server.address
        result = run_load(
            host, port,
            sessions=SERVICE_SESSIONS,
            ticks=SERVICE_TICKS,
            facts_per_tick=SERVICE_FACTS,
            matchers=matchers,
            session_prefix=label,
        )
    if result["errors"]:
        raise SystemExit(
            f"service scenario {label}: {result['errors']}"
        )
    stats = result["server"]
    _SERVICE_RESULTS[label] = {
        "sessions": result["sessions"],
        "matchers": result["matchers"],
        "events_total": result["events_total"],
        "events_per_s": result["events_per_s"],
        "latency": result["latency"],
        "busy_retries": result["busy_retries"],
    }
    return _ServiceCounters({
        "service_requests": stats["server"].get("requests", 0),
        "service_facts_ingested": stats["server"].get(
            "facts_ingested", 0
        ),
        "service_firings": result["firings"],
        "service_rulebase_compiles": stats["rule_bases"]["compiles"],
        "service_rulebase_hits": stats["rule_bases"]["hits"],
        "service_sessions_built": stats["rule_bases"][
            "sessions_built"
        ],
        "service_kernels_compiled": stats["rule_bases"][
            "kernels_compiled"
        ],
        "service_kernel_cache_hits": stats["rule_bases"][
            "kernel_cache_hits"
        ],
    })


def scenario_service_shared_rete():
    # One program, one matcher, eight tenants: exactly one compile.
    return _service_scenario("svc-rete", ("rete",))


def scenario_service_mixed_matchers():
    # Half rete, half treat: exactly two rule bases, shared 4 ways each.
    return _service_scenario("svc-mixed", ("rete", "treat"))


#: Seeded fault injection: roughly every tenth response line is torn
#: down or delayed, and ~4% of session ops kill the session outright.
#: ``wal_error`` stays off — a mid-firing WAL failure halts the run by
#: policy (non-retryable by design), which is not this scenario's point.
SERVICE_CHAOS = ("disconnect=0.03,partial=0.02,delay=0.05,"
                 "delay_s=0.001,kill=0.04,seed=29")


def scenario_service_chaos_keyed():
    """A durable idempotent fleet under chaos lands *exactly* the same
    ingest/firing totals as a quiet one: retries dedup, kills resume.
    Retry overhead and latency are recorded as informational."""
    import tempfile

    from repro.service.loadgen import run_load
    from repro.service.server import ServiceConfig, ServiceThread

    label = "svc-chaos"
    with tempfile.TemporaryDirectory() as wal_root:
        with ServiceThread(ServiceConfig(
            port=0, engine_workers=4, wal_root=wal_root,
            chaos=SERVICE_CHAOS,
        )) as server:
            host, port = server.address
            result = run_load(
                host, port,
                sessions=4,
                ticks=4,
                facts_per_tick=10,
                matchers=("rete",),
                durable=True,
                idempotent=True,
                session_prefix=label,
            )
    if result["errors"]:
        raise SystemExit(
            f"service scenario {label}: {result['errors']}"
        )
    stats = result["server"]
    injected = stats.get("chaos", {}).get("injected", {})
    if not sum(injected.values()):
        raise SystemExit(
            f"service scenario {label}: chaos layer injected nothing"
        )
    _SERVICE_RESULTS[label] = {
        "sessions": result["sessions"],
        "matchers": result["matchers"],
        "events_total": result["events_total"],
        "events_per_s": result["events_per_s"],
        "latency": result["latency"],
        "busy_retries": result["busy_retries"],
        # Informational resilience overhead; machine/timing dependent.
        "retries": result["retries"],
        "reconnects": result["reconnects"],
        "deduped": result["deduped"],
        "busy_shed": result["busy_shed"],
        "session_restarts": result["session_restarts"],
        "chaos_injected": dict(injected),
    }
    return _ServiceCounters({
        "service_chaos_facts_ingested": stats["server"].get(
            "facts_ingested", 0
        ),
        "service_chaos_firings": result["firings"],
    })


RELOAD_SESSIONS = 6
RELOAD_FACTS = 100

#: Same rule name, new body: every tenant's reload is a pure replace.
RELOAD_RULE = """
(p dept-size
  (dept ^name <d>)
  { [emp ^dept <d>] <staff> }
  :test ((count <staff>) >= 2)
  -->
  (write big <d> (count <staff>)))
""".strip()


def scenario_service_reload():
    """N tenants share one program; each hot-replaces the same rule
    with the same new body.  The copy-on-write contract is exact: one
    rule-base compile, ONE fork (tenants converge on it), one batch of
    kernel compiles — the N-1 later reloads reuse everything."""
    from repro.service.client import ServiceClient
    from repro.service.server import ServiceConfig, ServiceThread

    label = "svc-reload"
    fired = 0
    start = time.perf_counter()
    with ServiceThread(ServiceConfig(port=0, engine_workers=4)) as server:
        with ServiceClient(*server.address) as client:
            sessions = [f"{label}-{i}" for i in range(RELOAD_SESSIONS)]
            for sid in sessions:
                client.create(sid, PROGRAM, durable=False)
                client.assert_facts(sid, [
                    ("dept", {"name": f"d{d}"}) for d in range(N_DEPTS)
                ])
                client.assert_facts(sid, _facts(RELOAD_FACTS))
                response, _ = client.run(sid)
                fired += response["fired"]
            reload_latencies = []
            for sid in sessions:
                tick = time.perf_counter()
                client.replace_rule(sid, "dept-size", RELOAD_RULE)
                reload_latencies.append(time.perf_counter() - tick)
                response, _ = client.run(sid)
                fired += response["fired"]
            stats = client.stats()
    elapsed = time.perf_counter() - start
    _SERVICE_RESULTS[label] = {
        "sessions": RELOAD_SESSIONS,
        "reloads": RELOAD_SESSIONS,
        "elapsed_s": round(elapsed, 3),
        "reload_ms": {
            "first": round(reload_latencies[0] * 1000, 3),
            "rest_max": round(max(reload_latencies[1:]) * 1000, 3),
        },
        "rulebase_forks": stats["server"]["rulebase_forks"],
        "rules_replaced": stats["server"]["rules_replaced"],
    }
    bases = stats["rule_bases"]
    return _ServiceCounters({
        "service_reload_rulebase_compiles": bases["compiles"],
        "service_reload_forks": bases["forks"],
        "service_reload_sessions_built": bases["sessions_built"],
        "service_reload_kernels_compiled": bases["kernels_compiled"],
        "service_reload_kernel_cache_hits": bases["kernel_cache_hits"],
        "service_reload_firings": fired,
    })


SCENARIOS = {
    "bulk_load_per_event": scenario_bulk_load_per_event,
    "bulk_load_batched": scenario_bulk_load_batched,
    "churn_batched": scenario_churn_batched,
    "sharded_match": scenario_sharded_match,
    "storage_1m_memory": scenario_storage_1m_memory,
    "storage_1m_sqlite": scenario_storage_1m_sqlite,
    "service_shared_rete": scenario_service_shared_rete,
    "service_mixed_matchers": scenario_service_mixed_matchers,
    "service_chaos_keyed": scenario_service_chaos_keyed,
    "service_reload": scenario_service_reload,
}
SCENARIOS.update(_kernel_scenarios())

# Rules over three distinct CE-class sets ({dept,emp}, {emp}, {dept})
# so the sharded scenarios exercise three busy shards, not one.
SHARD_PROGRAM = PROGRAM + """
(p rich { [emp ^salary > 1500] <R> }
  :test ((count <R>) >= 1)
  -->
  (write rich (count <R>)))
(p depts { [dept] <D> }
  :test ((count <D>) >= 1)
  -->
  (write depts (count <D>)))
"""
SHARD_COUNT = 4
SHARD_WORKERS = (1, 2, 4)


def timed_sharded_match(workers):
    """Wall clock of one sharded bulk-load propagation (no stats)."""
    engine = RuleEngine(
        matcher=ShardedReteNetwork(shards=SHARD_COUNT, workers=workers)
    )
    engine.load(SHARD_PROGRAM)
    for d in range(N_DEPTS):
        engine.make("dept", name=f"d{d}")
    facts = _facts()
    start = time.perf_counter()
    engine.load_facts(facts)
    elapsed = time.perf_counter() - start
    engine.close()
    return elapsed


def run_scenarios():
    report = {"schema": 1, "scenarios": {}}
    for name, fn in SCENARIOS.items():
        start = time.perf_counter()
        stats = fn()
        elapsed = time.perf_counter() - start
        report["scenarios"][name] = {
            "counters": dict(stats.totals),
            "elapsed_s": round(elapsed, 4),
        }
    # Informational wall-clock of the sharded match at several pool
    # sizes.  Timings are machine dependent and never gated; they are
    # recorded so reports document how the shard pool scales.
    report["parallel"] = {
        "sharded_match": {
            "shards": SHARD_COUNT,
            "elapsed_s": {
                str(workers): round(timed_sharded_match(workers), 4)
                for workers in SHARD_WORKERS
            },
        }
    }
    verify_kernel_equivalence()
    report["kernels"] = {"speedup_vs_off": kernel_speedups(report)}
    # Informational service throughput/latency: machine dependent,
    # recorded so reports document sessions x events/sec and p50/p99.
    if _SERVICE_RESULTS:
        report["service"] = dict(_SERVICE_RESULTS)
    return report


def compare(report, baseline):
    """Return (regressions, improvements) beyond the 10% tolerance."""
    regressions = []
    improvements = []
    for name, base in baseline.get("scenarios", {}).items():
        current = report["scenarios"].get(name)
        if current is None:
            regressions.append(f"{name}: scenario missing from report")
            continue
        for counter in GATED_COUNTERS:
            want = base["counters"].get(counter)
            got = current["counters"].get(counter)
            if want is None or got is None:
                continue
            if counter in EXACT_COUNTERS:
                if got != want:
                    regressions.append(
                        f"{name}.{counter}: {got} != {want} "
                        f"(must match exactly)"
                    )
                continue
            limit = want * (1 + TOLERANCE)
            if got > limit and got - want > 1:
                regressions.append(
                    f"{name}.{counter}: {got} > {want} "
                    f"(+{(got - want) / want:.0%}, limit +{TOLERANCE:.0%})"
                )
            elif want and got < want * (1 - TOLERANCE):
                improvements.append(
                    f"{name}.{counter}: {got} < {want} "
                    f"({(got - want) / want:.0%})"
                )
    return regressions, improvements


def print_report(report):
    for name, data in report["scenarios"].items():
        print(f"{name}  ({data['elapsed_s']:.3f}s)")
        for counter in GATED_COUNTERS:
            if counter in data["counters"]:
                print(f"  {counter:<24}{data['counters'][counter]:>12}")
    sharded = report.get("parallel", {}).get("sharded_match")
    if sharded:
        timings = " ".join(
            f"w{workers}={elapsed:.3f}s"
            for workers, elapsed in sharded["elapsed_s"].items()
        )
        print(f"sharded_match wall clock ({sharded['shards']} shards): "
              f"{timings}")
    speedups = report.get("kernels", {}).get("speedup_vs_off")
    if speedups:
        print("kernel wall-clock speedup vs interpreted (off):")
        for name, ratio in speedups.items():
            print(f"  {name:<32}{ratio:>6.2f}x")
    for label, svc in report.get("service", {}).items():
        if "latency" in svc:
            run = svc["latency"]["run"]
            print(
                f"service {label}: {svc['sessions']} sessions "
                f"({','.join(svc['matchers'])}) "
                f"{svc['events_per_s']:.0f} events/s, run "
                f"p50={run['p50_ms']:.1f}ms p99={run['p99_ms']:.1f}ms"
            )
        elif "reload_ms" in svc:
            reload_ms = svc["reload_ms"]
            print(
                f"service {label}: {svc['sessions']} sessions, "
                f"{svc['reloads']} reloads "
                f"({svc['rulebase_forks']} fork), first="
                f"{reload_ms['first']:.1f}ms "
                f"rest_max={reload_ms['rest_max']:.1f}ms"
            )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) on >10%% work-counter regression vs baseline",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help=f"refresh {BASELINE_PATH.name} from this run",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help=f"report path (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    report = run_scenarios()
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print_report(report)
    print(f"\nwrote {args.output}")

    if args.write_baseline:
        baseline = {
            "schema": report["schema"],
            "scenarios": {
                name: {"counters": data["counters"]}
                for name, data in report["scenarios"].items()
            },
        }
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"wrote {BASELINE_PATH}")
        return 0

    if args.check:
        reference = latest_reference(exclude=args.output)
        if reference is None:
            print("error: no benchmark baseline found "
                  f"(no BENCH_<n>.json or {BASELINE_PATH.name} in "
                  f"{BASELINE_PATH.parent}); run with --write-baseline "
                  "first", file=sys.stderr)
            return 2
        print(f"gating against {reference.name}")
        baseline = json.loads(reference.read_text())
        regressions, improvements = compare(report, baseline)
        for line in improvements:
            print(f"improved: {line} — consider --write-baseline")
        if regressions:
            print("\nwork-counter regressions beyond "
                  f"{TOLERANCE:.0%}:", file=sys.stderr)
            for line in regressions:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"gate passed: no gated counter regressed beyond "
              f"{TOLERANCE:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
