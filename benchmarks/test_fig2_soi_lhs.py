"""Experiment F2 — Figure 2: set-oriented LHS variants.

Paper: with the Figure 1 WM, the all-set compete rule yields ONE SOI
holding the entire six-pair relation; making the second CE regular
partitions the relation into THREE SOIs (one per B player).
"""

from repro.bench import print_table

from benchmarks.conftest import load_paper_roster

ALL_SET = """
(literalize player name team)
(p compete
  [player ^name <n1> ^team A]
  [player ^name <n2> ^team B]
  -->
  (write x))
"""

MIXED = """
(literalize player name team)
(p compete
  [player ^name <n1> ^team A]
  (player ^name <n2> ^team B)
  -->
  (write x))
"""


def build(engine_factory, program):
    engine = engine_factory()
    engine.load(program)
    load_paper_roster(engine)
    return engine


def test_figure2_variants(engine_factory, benchmark):
    all_set = build(engine_factory, ALL_SET)
    mixed = build(engine_factory, MIXED)

    all_set_sois = all_set.conflict_set.of_rule("compete")
    mixed_sois = mixed.conflict_set.of_rule("compete")

    rows = [
        ("both CEs set-oriented", len(all_set_sois),
         len(all_set_sois[0].tokens())),
        ("set + regular CE", len(mixed_sois),
         len(mixed_sois[0].tokens())),
    ]
    print_table(
        "F2 / Figure 2 — SOIs per LHS variant "
        "(paper: 1 SOI of 6; 3 SOIs of 2)",
        ["LHS shape", "SOIs", "tokens in first SOI"],
        rows,
    )
    assert len(all_set_sois) == 1
    assert len(all_set_sois[0].tokens()) == 6
    assert len(mixed_sois) == 3
    assert all(len(soi.tokens()) == 2 for soi in mixed_sois)

    benchmark(build, engine_factory, ALL_SET)


def test_figure2_aggregation_cost(engine_factory, benchmark):
    """SOI aggregation adds only terminal-node work (paper §5)."""

    def churn(program, size):
        engine = build(engine_factory, program)
        for index in range(size):
            wme = engine.make("player", team="B", name=f"extra{index}")
            engine.remove(wme)
        return engine

    benchmark(churn, ALL_SET, 50)
