"""Ablation — hash-indexed join activations in the Rete network.

Equality joins probe a value index on both inputs instead of scanning
the whole opposite memory (`ReteNetwork(indexed_joins=False)` restores
the scan).  Candidate filtering is unchanged — every candidate still
passes the full test list — so this is purely a cost ablation, guarded
by the differential equivalence suite.
"""

import time

from benchmarks.conftest import build_stats_network

from repro.bench import print_table
from repro.lang.parser import parse_rule
from repro.rete import ReteNetwork
from repro.wm import WorkingMemory

RULE = "(p pair (left ^k <k>) (right ^k <k>) --> (halt))"


def run(indexed, size):
    wm, net, stats = build_stats_network(RULE, indexed_joins=indexed)
    start = time.perf_counter()
    for key in range(size):
        wm.make("left", k=key)
    for key in range(size):
        wm.make("right", k=key)
    elapsed = time.perf_counter() - start
    return elapsed, net, stats


def test_join_index_ablation(benchmark):
    rows = []
    for size in (100, 200, 400):
        scan_time, scan_net, scan_stats = min(
            (run(False, size) for _ in range(3)), key=lambda r: r[0]
        )
        probe_time, probe_net, probe_stats = min(
            (run(True, size) for _ in range(3)), key=lambda r: r[0]
        )
        scan_work = scan_stats.totals
        probe_work = probe_stats.totals
        # Identical results either way.
        assert (
            scan_net.stats.tokens_created
            == probe_net.stats.tokens_created
        )
        # The work counters tell the real story: the scan configuration
        # never probes and examines O(n) candidates per activation; the
        # indexed one replaces those scans with probes that surface only
        # the matching bucket.  (Level-0 joins still "scan" the 1-token
        # dummy memory, so compare candidate volume, not scan count.)
        assert scan_work["index_probes"] == 0
        assert probe_work["index_probes"] > 0
        assert (
            probe_work["full_scan_candidates"]
            + probe_work["index_probe_candidates"]
            < scan_work["full_scan_candidates"] / 10
        )
        assert (
            scan_work["join_tests_passed"]
            == probe_work["join_tests_passed"]
        )
        rows.append(
            (
                size * 2,
                f"{scan_time:.4f}",
                f"{probe_time:.4f}",
                scan_work["full_scan_candidates"],
                probe_work["index_probe_candidates"],
                f"{scan_time / probe_time:.1f}x",
            )
        )
    print_table(
        "Ablation — equality joins: memory scan vs hash-index probe "
        "(1:1 key join)",
        ["WMEs", "scan s", "indexed s", "scan cands", "probe cands",
         "speedup"],
        rows,
    )
    # The scan is O(n) per activation -> quadratic build; probing wins
    # by a growing factor.
    assert float(rows[-1][5].rstrip("x")) > 3.0

    benchmark(run, True, 200)


def test_index_maintained_under_churn(benchmark):
    """Removals keep the index exact (probed results == rescans)."""
    wm = WorkingMemory()
    net = ReteNetwork(indexed_joins=True)
    from repro.engine.conflict import ConflictSet

    listener = ConflictSet()
    net.set_listener(listener)
    net.attach(wm)
    net.add_rule(parse_rule(RULE))
    lefts = [wm.make("left", k=key % 10) for key in range(50)]
    rights = [wm.make("right", k=key % 10) for key in range(50)]
    for wme in lefts[::2] + rights[::3]:
        wm.remove(wme)
    live_left = [w for w in lefts if w in wm]
    live_right = [w for w in rights if w in wm]
    expected = sum(
        1
        for l in live_left
        for r in live_right
        if l.get("k") == r.get("k")
    )
    assert len(listener) == expected

    benchmark(run, False, 100)
