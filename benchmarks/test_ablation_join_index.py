"""Ablation — hash-indexed join activations in the Rete network.

Equality joins probe a value index on both inputs instead of scanning
the whole opposite memory (`ReteNetwork(indexed_joins=False)` restores
the scan).  Candidate filtering is unchanged — every candidate still
passes the full test list — so this is purely a cost ablation, guarded
by the differential equivalence suite.
"""

import time

from repro.bench import print_table
from repro.lang.parser import parse_rule
from repro.match.base import NullListener
from repro.rete import ReteNetwork
from repro.wm import WorkingMemory

RULE = "(p pair (left ^k <k>) (right ^k <k>) --> (halt))"


def run(indexed, size):
    wm = WorkingMemory()
    net = ReteNetwork(indexed_joins=indexed)
    net.set_listener(NullListener())
    net.attach(wm)
    net.add_rule(parse_rule(RULE))
    start = time.perf_counter()
    for key in range(size):
        wm.make("left", k=key)
    for key in range(size):
        wm.make("right", k=key)
    elapsed = time.perf_counter() - start
    return elapsed, net


def test_join_index_ablation(benchmark):
    rows = []
    for size in (100, 200, 400):
        scan_time, scan_net = min(
            (run(False, size) for _ in range(3)), key=lambda r: r[0]
        )
        probe_time, probe_net = min(
            (run(True, size) for _ in range(3)), key=lambda r: r[0]
        )
        # Identical results either way.
        assert (
            scan_net.stats.tokens_created
            == probe_net.stats.tokens_created
        )
        rows.append(
            (
                size * 2,
                f"{scan_time:.4f}",
                f"{probe_time:.4f}",
                f"{scan_time / probe_time:.1f}x",
            )
        )
    print_table(
        "Ablation — equality joins: memory scan vs hash-index probe "
        "(1:1 key join)",
        ["WMEs", "scan s", "indexed s", "speedup"],
        rows,
    )
    # The scan is O(n) per activation -> quadratic build; probing wins
    # by a growing factor.
    assert float(rows[-1][3].rstrip("x")) > 3.0

    benchmark(run, True, 200)


def test_index_maintained_under_churn(benchmark):
    """Removals keep the index exact (probed results == rescans)."""
    wm = WorkingMemory()
    net = ReteNetwork(indexed_joins=True)
    from repro.engine.conflict import ConflictSet

    listener = ConflictSet()
    net.set_listener(listener)
    net.attach(wm)
    net.add_rule(parse_rule(RULE))
    lefts = [wm.make("left", k=key % 10) for key in range(50)]
    rights = [wm.make("right", k=key % 10) for key in range(50)]
    for wme in lefts[::2] + rights[::3]:
        wm.remove(wme)
    live_left = [w for w in lefts if w in wm]
    live_right = [w for w in rights if w in wm]
    expected = sum(
        1
        for l in live_left
        for r in live_right
        if l.get("k") == r.get("k")
    )
    assert len(listener) == expected

    benchmark(run, False, 100)
