"""Experiment C3 — §1 claim: set rules pack more actions per firing.

"Research has shown that a limiting factor for parallelization of the
Rete network is the number of operations done per rule firing ...  The
number of actions in a set-oriented rule should be substantially
greater, providing the ability to increase parallelism."  We measure
exactly that: WM actions per firing for the two formulations of the
collection-processing task, across sizes.
"""

from repro import RuleEngine
from repro.bench import print_table
from repro.bench.workloads import process_set_program, process_tuple_program

SIZES = (10, 50, 200)


def actions_profile(loader, size):
    engine = RuleEngine()
    loader(engine, size)
    engine.run(limit=size * 3 + 10)
    actions = engine.tracer.actions_per_firing()
    return {
        "firings": len(actions),
        "max": max(actions),
        "mean": sum(actions) / len(actions),
        "total": sum(actions),
    }


def test_actions_per_firing(benchmark):
    rows = []
    for size in SIZES:
        tuple_profile = actions_profile(process_tuple_program, size)
        set_profile = actions_profile(process_set_program, size)
        rows.append(
            (
                size,
                f"{tuple_profile['mean']:.2f}",
                tuple_profile["max"],
                f"{set_profile['mean']:.2f}",
                set_profile["max"],
            )
        )
        # The set firing batches ~N actions; tuple firings do ~1 each.
        assert set_profile["max"] >= size
        assert tuple_profile["max"] <= 2
    print_table(
        "C3 — WM actions per firing (parallelism proxy; paper: "
        "set-oriented 'substantially greater')",
        ["N", "tuple mean", "tuple max", "set mean", "set max"],
        rows,
    )

    benchmark(actions_profile, process_set_program, 100)


def test_parallel_work_availability(benchmark):
    """Independent actions inside one firing = exploitable parallelism.

    set-modify over N members touches N disjoint WMEs: all N updates
    could run in parallel.  The tuple program exposes one update per
    firing and serialises on the control WME.
    """
    size = 100
    engine = RuleEngine()
    process_set_program(engine, size)
    engine.run(limit=10)
    [record] = [
        r for r in engine.tracer.firings if r.rule_name == "process-all"
    ]
    rows = [
        ("independent WM updates in one set firing", record.modifies - 1),
        ("independent WM updates per tuple firing", 1),
    ]
    print_table(
        "C3 — parallelisable work per firing (N = 100)",
        ["metric", "value"],
        rows,
    )
    assert record.modifies == size + 1  # N items + the control WME

    benchmark(actions_profile, process_tuple_program, 50)
