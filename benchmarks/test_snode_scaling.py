"""Experiment F3b — S-node incremental cost scaling.

The γ-memory design means one token arrival costs a group lookup plus
an O(1) aggregate delta, independent of how many tokens the SOI already
holds (only the ordered insert scans, and new WMEs land at the head).
This bench grows an SOI and measures per-token cost, then sweeps the
number of groups to show the keyed lookup stays flat.
"""

import random
import time

from benchmarks.conftest import build_stats_network

from repro.bench import print_table
from repro.lang.parser import parse_rule
from repro.match.base import NullListener
from repro.rete import ReteNetwork
from repro.rete.snode import SetOrientedInstance
from repro.wm import WorkingMemory

SUM_RULE = (
    "(p watch { [item ^g <g> ^v <v>] <S> } :scalar (<g>) "
    ":test ((sum <S> ^v) >= 0) --> (halt))"
)


def build():
    wm = WorkingMemory()
    net = ReteNetwork()
    net.set_listener(NullListener())
    net.attach(wm)
    net.add_rule(parse_rule(SUM_RULE))
    return wm, net


def grow_one_group(total):
    wm, net = build()
    start = time.perf_counter()
    for index in range(total):
        wm.make("item", g="only", v=index)
    return time.perf_counter() - start


def grow_many_groups(total, groups):
    wm, net = build()
    start = time.perf_counter()
    for index in range(total):
        wm.make("item", g=f"g{index % groups}", v=index)
    return time.perf_counter() - start


def test_per_token_cost_with_soi_size(benchmark):
    rows = []
    for total in (100, 200, 400, 800):
        elapsed = min(grow_one_group(total) for _ in range(3))
        rows.append((total, f"{elapsed:.4f}",
                     f"{elapsed / total * 1e6:.1f}"))
    print_table(
        "F3b — one growing SOI: total time and per-token cost "
        "(head inserts + O(1) aggregate deltas stay flat)",
        ["tokens", "time (s)", "us/token"],
        rows,
    )
    per_token = [float(row[2]) for row in rows]
    # Per-token cost must not blow up as the SOI grows 8x: allow 3x
    # headroom over the smallest measurement for CI noise.
    assert per_token[-1] < per_token[0] * 3

    benchmark(grow_one_group, 400)


def churn_one_group(total):
    """Build a *total*-token SOI, then retract every WME oldest-first.

    Retracting the oldest token used to scan the whole γ-memory token
    list per removal — O(n²) for the teardown; with the bisect-indexed
    ordering it is O(n log n).  Only the teardown is timed.
    """
    wm, net, stats = build_stats_network(SUM_RULE)
    wmes = [wm.make("item", g="only", v=index) for index in range(total)]
    start = time.perf_counter()
    for wme in wmes:
        wm.remove(wme)
    return time.perf_counter() - start, stats


def test_soi_10k_maintenance_subquadratic(benchmark):
    """Acceptance check: 10k-token γ-memory maintenance scales.

    The MatchStats γ-memory counters double-check that the SOI really
    reached the advertised size before the teardown was timed.
    """
    rows = []
    times = {}
    for total in (2500, 10000):
        elapsed, stats = min(
            (churn_one_group(total) for _ in range(3)),
            key=lambda r: r[0],
        )
        snode_record = next(
            record for label, record in stats.nodes.items()
            if label.startswith("snode:")
        )
        assert snode_record["tokens_hwm"] == total
        assert snode_record["groups_hwm"] == 1
        assert snode_record["tokens"] == 0  # fully drained
        times[total] = elapsed
        rows.append((total, f"{elapsed:.4f}",
                     f"{elapsed / total * 1e6:.1f}"))
    print_table(
        "F3b — oldest-first teardown of one SOI "
        "(bisect maintenance: sub-quadratic)",
        ["tokens", "teardown (s)", "us/removal"],
        rows,
    )
    # 4x the tokens: linear maintenance costs ~4x, quadratic ~16x.
    assert times[10000] < times[2500] * 8

    benchmark(churn_one_group, 2500)


class _StubToken:
    """Bare token standing in for a beta token: just the recency key."""

    __slots__ = ("_tags",)

    def __init__(self, tags):
        self._tags = tuple(sorted(tags, reverse=True))

    def time_tags(self):
        return self._tags


def _reference_insert(tokens, token):
    """The seed's linear-scan insert (head = dominant, ties keep order)."""
    key = token.time_tags()
    for position, existing in enumerate(tokens):
        if key > existing.time_tags():
            tokens.insert(position, token)
            return position == 0
    tokens.append(token)
    return len(tokens) == 1


def _reference_remove(tokens, token):
    """The seed's identity scan."""
    position = next(
        index for index, existing in enumerate(tokens) if existing is token
    )
    del tokens[position]
    return position == 0


def test_soi_ordering_matches_seed_reference(benchmark):
    """The bisect rewrite preserves the seed ordering exactly.

    Random insert/remove interleavings with heavy key ties (tags drawn
    from a small range) must leave the token list — and every head
    change signal, which is what drives conflict-set ordering — equal
    to the linear-scan reference.  Tokens within one SOI always carry
    the same number of tags (one rule, fixed CE count), which the
    sign-flipped bisect keys rely on.
    """
    rng = random.Random(1991)
    soi = SetOrientedInstance(key="ref", key_wmes={}, p_values={},
                              agg_states=[])
    reference = []
    live = []
    for _ in range(3000):
        if live and rng.random() < 0.45:
            token = live.pop(rng.randrange(len(live)))
            got = soi.remove_token(token)
            expected = _reference_remove(reference, token)
        else:
            token = _StubToken(
                (rng.randrange(60), rng.randrange(60))
            )
            live.append(token)
            got = soi.insert_token(token)
            expected = _reference_insert(reference, token)
        assert got == expected
        assert soi.tokens == reference

    benchmark(churn_one_group, 1000)


def test_group_count_does_not_hurt(benchmark):
    rows = []
    for groups in (1, 4, 16, 64):
        elapsed = min(grow_many_groups(512, groups) for _ in range(3))
        rows.append((groups, f"{elapsed:.4f}"))
    print_table(
        "F3b — 512 tokens across G groups (keyed γ-memory lookup)",
        ["groups", "time (s)"],
        rows,
    )

    benchmark(grow_many_groups, 512, 16)
