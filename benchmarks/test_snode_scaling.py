"""Experiment F3b — S-node incremental cost scaling.

The γ-memory design means one token arrival costs a group lookup plus
an O(1) aggregate delta, independent of how many tokens the SOI already
holds (only the ordered insert scans, and new WMEs land at the head).
This bench grows an SOI and measures per-token cost, then sweeps the
number of groups to show the keyed lookup stays flat.
"""

import time

from repro.bench import print_table
from repro.lang.parser import parse_rule
from repro.match.base import NullListener
from repro.rete import ReteNetwork
from repro.wm import WorkingMemory

SUM_RULE = (
    "(p watch { [item ^g <g> ^v <v>] <S> } :scalar (<g>) "
    ":test ((sum <S> ^v) >= 0) --> (halt))"
)


def build():
    wm = WorkingMemory()
    net = ReteNetwork()
    net.set_listener(NullListener())
    net.attach(wm)
    net.add_rule(parse_rule(SUM_RULE))
    return wm, net


def grow_one_group(total):
    wm, net = build()
    start = time.perf_counter()
    for index in range(total):
        wm.make("item", g="only", v=index)
    return time.perf_counter() - start


def grow_many_groups(total, groups):
    wm, net = build()
    start = time.perf_counter()
    for index in range(total):
        wm.make("item", g=f"g{index % groups}", v=index)
    return time.perf_counter() - start


def test_per_token_cost_with_soi_size(benchmark):
    rows = []
    for total in (100, 200, 400, 800):
        elapsed = min(grow_one_group(total) for _ in range(3))
        rows.append((total, f"{elapsed:.4f}",
                     f"{elapsed / total * 1e6:.1f}"))
    print_table(
        "F3b — one growing SOI: total time and per-token cost "
        "(head inserts + O(1) aggregate deltas stay flat)",
        ["tokens", "time (s)", "us/token"],
        rows,
    )
    per_token = [float(row[2]) for row in rows]
    # Per-token cost must not blow up as the SOI grows 8x: allow 3x
    # headroom over the smallest measurement for CI noise.
    assert per_token[-1] < per_token[0] * 3

    benchmark(grow_one_group, 400)


def test_group_count_does_not_hurt(benchmark):
    rows = []
    for groups in (1, 4, 16, 64):
        elapsed = min(grow_many_groups(512, groups) for _ in range(3))
        rows.append((groups, f"{elapsed:.4f}"))
    print_table(
        "F3b — 512 tokens across G groups (keyed γ-memory lookup)",
        ["groups", "time (s)"],
        rows,
    )

    benchmark(grow_many_groups, 512, 16)
