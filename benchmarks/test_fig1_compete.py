"""Experiment F1 — Figure 1: the compete rule's conflict set.

Paper: 5 player WMEs produce 6 instantiations (every A x B pair).
The benchmark times a full build-and-match of the figure, and a scaled
variant shows conflict-set growth is the |A| x |B| product.
"""

from repro.bench import print_table

from benchmarks.conftest import load_paper_roster

COMPETE = """
(literalize player name team)
(p compete
  (player ^name <n1> ^team A)
  (player ^name <n2> ^team B)
  -->
  (write <n1> <n2>))
"""


def build_figure1(engine_factory):
    engine = engine_factory()
    engine.load(COMPETE)
    load_paper_roster(engine)
    return engine


def test_figure1_conflict_set(engine_factory, benchmark):
    engine = benchmark(build_figure1, engine_factory)
    instantiations = engine.conflict_set.of_rule("compete")
    assert len(instantiations) == 6

    pairs = sorted(
        (inst.wme_at(0).time_tag, inst.wme_at(1).time_tag)
        for inst in instantiations
    )
    print_table(
        "F1 / Figure 1 — compete: conflict set (paper: 6 instantiations)",
        ["A player (tag)", "B player (tag)"],
        pairs,
    )
    assert pairs == [(1, 3), (1, 4), (1, 5), (2, 3), (2, 4), (2, 5)]


def test_figure1_scaling(engine_factory, benchmark):
    """Tuple orientation scales as the cross product."""

    def build(size):
        engine = engine_factory()
        engine.load(COMPETE)
        for index in range(size):
            engine.make("player", team="A", name=f"a{index}")
            engine.make("player", team="B", name=f"b{index}")
        return engine

    rows = []
    for size in (2, 4, 8, 16):
        engine = build(size)
        rows.append((size * 2, len(engine.conflict_set.of_rule("compete"))))
    print_table(
        "F1 — instantiation count vs roster size (|A| x |B| growth)",
        ["players", "instantiations"],
        rows,
    )
    assert [count for _, count in rows] == [4, 16, 64, 256]

    benchmark(build, 8)
