"""Experiment F4 — Figure 4: GroupByTeam's nested foreach iterations.

Paper: the single instantiation decomposes as team B (Sue, Jack) then
team A (Janice, Jack), Sue printed once despite two WMEs.  The bench
times a single set-oriented firing against the equivalent work done as
separate tuple instantiations.
"""

from repro.bench import print_table

from benchmarks.conftest import load_paper_roster

GROUP_BY_TEAM = """
(literalize player name team)
(p GroupByTeam
  [player ^team <t> ^name <n>]
  -->
  (foreach <t>
    (write <t>)
    (foreach <n>
      (write <n>))))
"""


def run_figure4(engine_factory):
    engine = engine_factory()
    engine.load(GROUP_BY_TEAM)
    load_paper_roster(engine)
    engine.run(limit=5)
    return engine


def test_figure4_iteration_trace(engine_factory, benchmark):
    engine = benchmark(run_figure4, engine_factory)
    expected = ["B", "Sue", "Jack", "A", "Janice", "Jack"]
    print_table(
        "F4 / Figure 4 — GroupByTeam foreach trace "
        "(paper order: B, Sue, Jack, then A, ...)",
        ["step", "written"],
        list(enumerate(engine.output, start=1)),
    )
    assert engine.output == expected
    assert engine.tracer.firing_count == 1


def test_figure4_one_firing_replaces_many(engine_factory, benchmark):
    """The same grouping via scalar partitioning needs 4 firings."""
    scalar_version = """
    (literalize player name team)
    (p per-group
      [player ^team <t> ^name <n>]
      :scalar (<t> <n>)
      -->
      (write <t> <n>))
    """

    def run_scalar():
        engine = engine_factory()
        engine.load(scalar_version)
        load_paper_roster(engine)
        engine.run(limit=20)
        return engine

    engine = run_scalar()
    rows = [
        ("set-oriented foreach", 1),
        (":scalar partitioning", engine.tracer.firing_count),
    ]
    print_table(
        "F4 — firings to visit every (team, name) group",
        ["formulation", "firings"],
        rows,
    )
    assert engine.tracer.firing_count == 4  # distinct (t, n) pairs

    benchmark(run_scalar)
