"""Experiment C2 — §7.1 claim: one set firing replaces unbounded iteration.

The same update-every-element task written tuple-oriented (control WME
+ one firing per element + a finish rule — the paper's "unwieldy
control mechanisms and marking schemes") versus set-oriented (one
``set-modify`` firing).  Reports firings and wall time across WM sizes;
the paper's prediction is tuple = N + 2 and set = 1, at every size.
"""

import time

from repro import RuleEngine
from repro.bench import print_table
from repro.bench.workloads import process_set_program, process_tuple_program

SIZES = (10, 50, 100, 250, 500)


def run_task(loader, size):
    engine = RuleEngine()
    loader(engine, size)
    start = time.perf_counter()
    fired = engine.run(limit=size * 3 + 10)
    elapsed = time.perf_counter() - start
    done = len(engine.wm.find("item", status="done"))
    return fired, elapsed, done


def test_firing_counts_across_sizes(benchmark):
    rows = []
    for size in SIZES:
        tuple_fired, tuple_time, tuple_done = run_task(
            process_tuple_program, size
        )
        set_fired, set_time, set_done = run_task(process_set_program, size)
        assert tuple_done == set_done == size
        rows.append(
            (
                size,
                tuple_fired,
                set_fired,
                f"{tuple_time:.4f}",
                f"{set_time:.4f}",
                f"{tuple_fired / set_fired:.0f}x",
            )
        )
    print_table(
        "C2 — firings to process an N-element collection "
        "(paper claim: N+2 vs 1)",
        ["N", "tuple firings", "set firings", "tuple s", "set s",
         "firing ratio"],
        rows,
    )
    for (size, tuple_fired, set_fired, *_rest) in rows:
        assert tuple_fired == size + 2
        assert set_fired == 1

    benchmark(run_task, process_set_program, 100)


def test_tuple_variant_needs_control_state(benchmark):
    """The tuple program carries control-WME churn the set one avoids."""
    engine_tuple = RuleEngine()
    process_tuple_program(engine_tuple, 50)
    engine_tuple.run(limit=200)
    engine_set = RuleEngine()
    process_set_program(engine_set, 50)
    engine_set.run(limit=200)
    rows = [
        ("tuple", len(engine_tuple.rules),
         engine_tuple.tracer.total_wm_actions()),
        ("set", len(engine_set.rules),
         engine_set.tracer.total_wm_actions()),
    ]
    print_table(
        "C2 — program size and total WM actions (N = 50)",
        ["formulation", "rules needed", "total WM actions"],
        rows,
    )
    assert len(engine_tuple.rules) == 3  # start / process / finish
    assert len(engine_set.rules) == 1

    benchmark(run_task, process_tuple_program, 50)
