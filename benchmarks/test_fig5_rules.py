"""Experiment F5 — Figure 5: the four powerful set-oriented rules.

Reproduces each rule's behaviour on the paper's roster and reports
firings + WM actions per rule; the bench times the SwitchTeams firing,
the paper's flagship "conceptual unity" example.
"""

from repro.bench import print_table

from benchmarks.conftest import load_paper_roster

SWITCH_TEAMS = """
(literalize player name team)
(p SwitchTeams
  { [player ^team A] <ATeam> }
  { [player ^team B] <BTeam> }
  :test ((count <ATeam>) == (count <BTeam>))
  -->
  (set-modify <ATeam> ^team B)
  (set-modify <BTeam> ^team A))
"""

REMOVE_DUPS = """
(literalize player name team)
(p RemoveDups
  { [player ^name <n> ^team <t>] <P> }
  :scalar (<n> <t>)
  :test ((count <P>) > 1)
  -->
  (bind <First> true)
  (foreach <P> descending
    (if (<First> == true)
      (bind <First> false)
     else
      (remove <P>))))
"""

GROUP_BY_A = """
(literalize player name team)
(p GroupByA
  [player ^name <n1> ^team A]
  [player ^name <n2> ^team B]
  -->
  (foreach <n1>
    (write <n1>)
    (foreach <n2> (write <n2>))))
"""


def test_figure5_switch_teams(engine_factory, benchmark):
    def run(size):
        engine = engine_factory()
        engine.load(SWITCH_TEAMS)
        for index in range(size):
            engine.make("player", team="A", name=f"a{index}")
            engine.make("player", team="B", name=f"b{index}")
        engine.run(limit=1)
        return engine

    engine = benchmark(run, 10)
    [record] = engine.tracer.firings
    rows = [
        ("firings", engine.tracer.firing_count),
        ("WM actions in that firing", record.wm_actions),
        ("players switched", 20),
    ]
    print_table(
        "F5 / Figure 5 — SwitchTeams (one firing switches everyone)",
        ["metric", "value"],
        rows,
    )
    assert record.wm_actions == 20
    assert all(
        w.get("team") == "B"
        for w in engine.wm
        if str(w.get("name")).startswith("a")
    )


def test_figure5_remove_dups(engine_factory, benchmark):
    def run():
        engine = engine_factory()
        engine.load(REMOVE_DUPS)
        load_paper_roster(engine)
        engine.run(limit=10)
        return engine

    engine = benchmark(run)
    remaining = sorted((w.get("name"), w.get("team")) for w in engine.wm)
    print_table(
        "F5 / Figure 5 — RemoveDups survivors "
        "(paper: Sue/B loses its older copy)",
        ["name", "team"],
        remaining,
    )
    assert remaining == [
        ("Jack", "A"), ("Jack", "B"), ("Janice", "A"), ("Sue", "B"),
    ]
    assert engine.tracer.firing_count == 1


def test_figure5_group_by_a(engine_factory, benchmark):
    def run():
        engine = engine_factory()
        engine.load(GROUP_BY_A)
        load_paper_roster(engine)
        engine.run(limit=2)
        return engine

    engine = benchmark(run)
    print_table(
        "F5 / Figure 5 — GroupByA hierarchical output",
        ["step", "written"],
        list(enumerate(engine.output, start=1)),
    )
    # Each A player followed by the distinct B names they compete with.
    assert engine.output == [
        "Janice", "Sue", "Jack", "Jack", "Sue", "Jack",
    ]
