"""Ablation — Rete node sharing (the §5 advantage the S-node preserves).

"All of the advantages of Rete such as shared tests remain, even
between set-oriented and non-set-oriented rules."  This ablation
compiles a family of rules with a common join prefix, with alpha/beta
sharing enabled and disabled, and reports memory counts, token work,
and wall time.
"""

import time

from benchmarks.conftest import build_stats_network

from repro.bench import print_table
from repro.lang.parser import parse_rule
from repro.rete import ReteNetwork
from repro.wm import WorkingMemory

RULE_FAMILY_SIZE = 8


def rule_family():
    """Rules sharing CE1+CE2; each adds a distinct third CE."""
    rules = []
    for index in range(RULE_FAMILY_SIZE):
        rules.append(parse_rule(
            f"(p fam-{index} "
            f"(a ^x <v>) (b ^y <v>) (c ^z <v> ^k {index}) "
            f"--> (write {index}))"
        ))
    # Include a set-oriented sibling sharing the same prefix (§5).
    rules.append(parse_rule(
        "(p fam-set (a ^x <v>) { [b ^y <v>] <S> } "
        ":test ((count <S>) >= 1) --> (write s))"
    ))
    return rules


def run_configuration(share_alpha, share_beta, size=12):
    wm, net, stats = build_stats_network(
        *rule_family(), share_alpha=share_alpha, share_beta=share_beta
    )
    start = time.perf_counter()
    wmes = []
    for index in range(size):
        wmes.append(wm.make("a", x=index))
        wmes.append(wm.make("b", y=index))
        wmes.append(wm.make("c", z=index, k=index % RULE_FAMILY_SIZE))
    for wme in wmes:
        wm.remove(wme)
    elapsed = time.perf_counter() - start
    return net, elapsed, stats


def test_sharing_ablation(benchmark):
    rows = []
    results = {}
    for label, share_alpha, share_beta in (
        ("full sharing", True, True),
        ("no beta sharing", True, False),
        ("no sharing at all", False, False),
    ):
        net, elapsed, stats = run_configuration(share_alpha, share_beta)
        results[label] = (net, stats)
        rows.append(
            (
                label,
                net.alpha.memory_count,
                net.stats.tokens_created,
                stats.totals["join_tests_attempted"],
                f"{elapsed:.4f}",
            )
        )
    print_table(
        "Ablation — Rete sharing on a 9-rule family with a common "
        "prefix",
        ["configuration", "alpha memories", "tokens created",
         "join tests", "time (s)"],
        rows,
    )
    shared_net, shared_stats = results["full sharing"]
    unshared_net, unshared_stats = results["no sharing at all"]
    # Sharing collapses the alpha memories and the prefix join work —
    # visible directly in the match-work counters, not only in timings.
    assert shared_net.alpha.memory_count < unshared_net.alpha.memory_count
    assert (
        shared_net.stats.tokens_created < unshared_net.stats.tokens_created
    )
    assert (
        shared_stats.totals["join_tests_attempted"]
        < unshared_stats.totals["join_tests_attempted"]
    )

    benchmark(run_configuration, True, True)


def test_unshared_network_still_correct(benchmark):
    """The ablation changes cost, never results."""

    def conflict_sizes(share_alpha, share_beta):
        wm = WorkingMemory()
        from repro.engine.conflict import ConflictSet

        listener = ConflictSet()
        net = ReteNetwork(share_alpha=share_alpha, share_beta=share_beta)
        net.set_listener(listener)
        net.attach(wm)
        for rule in rule_family():
            net.add_rule(rule)
        for index in range(6):
            wm.make("a", x=index)
            wm.make("b", y=index)
            wm.make("c", z=index, k=index % RULE_FAMILY_SIZE)
        return sorted(
            (inst.rule.name, inst.recency_key())
            for inst in listener.instantiations()
        )

    assert conflict_sizes(True, True) == conflict_sizes(False, False)

    benchmark(run_configuration, False, False)
