"""Durability overhead and recovery-time characteristics (PR 3).

Two claims are measured:

* **fsync-policy overhead** — appending the same workload under
  ``off`` / ``batch`` / ``always`` shows the durability/throughput
  trade: ``batch`` pays one fsync per delta-batch, ``always`` one per
  record, ``off`` none.  The WAL byte volume is identical across
  policies (the policy changes *when* data reaches stable storage, not
  what is written).

* **recovery time scales with WAL tail length** — recovery replays the
  tail past the last checkpoint; a checkpoint truncates the tail, so
  recovery after a checkpoint is (nearly) flat regardless of history
  length.  Measured: full-log replay vs checkpoint + empty tail, at
  growing workload sizes.
"""

import itertools
import time

import pytest

from repro import DurabilityConfig, MatchStats, RuleEngine
from repro.bench import print_table

PROGRAM = """
(literalize reading sensor value)
(p spike (reading ^sensor <s> ^value 99) --> (write spike <s>))
"""

BATCH = 50


def _workload(wal_dir, n, fsync="off"):
    stats = MatchStats()
    engine = RuleEngine(
        durability=DurabilityConfig(wal_dir, fsync=fsync), stats=stats
    )
    engine.load(PROGRAM)
    start = time.perf_counter()
    for base in range(0, n, BATCH):
        with engine.batch():
            for i in range(base, min(base + BATCH, n)):
                engine.make(
                    "reading", sensor=f"s{i % 7}", value=i % 100
                )
    elapsed = time.perf_counter() - start
    return engine, stats, elapsed


def _recover_time(wal_dir):
    start = time.perf_counter()
    engine = RuleEngine.recover(wal_dir, durability=False)
    return engine, time.perf_counter() - start


def test_fsync_policy_overhead(tmp_path, benchmark):
    rows = []
    measured = {}
    for policy in ("off", "batch", "always"):
        engine, stats, elapsed = _workload(
            tmp_path / policy, 2000, fsync=policy
        )
        engine.close()
        counters = stats.counters
        measured[policy] = counters
        rows.append((
            policy,
            counters["wal_appends"],
            counters["wal_bytes"],
            counters.get("wal_fsyncs", 0),
            f"{elapsed:.3f}",
        ))
    print()
    print_table(
        "fsync policy overhead (2000 makes in batches of 50)",
        ["policy", "appends", "bytes", "fsyncs", "load time (s)"],
        rows,
    )
    # Identical log content; only the fsync count differs.
    assert (
        measured["off"]["wal_bytes"]
        == measured["batch"]["wal_bytes"]
        == measured["always"]["wal_bytes"]
    )
    assert measured["off"].get("wal_fsyncs", 0) == 0
    # batch: one fsync per delta-batch (+ meta/close syncs are absent
    # here because only batch records trigger the policy, plus close).
    assert measured["batch"]["wal_fsyncs"] >= 2000 // BATCH
    assert (
        measured["always"]["wal_fsyncs"]
        > measured["batch"]["wal_fsyncs"]
    )

    # Each round needs its own directory: a fresh engine refuses a
    # WAL directory already holding a previous session's records.
    rounds = itertools.count()
    benchmark(
        lambda: _workload(tmp_path / f"bench-{next(rounds)}", 500, "off")
    )


def test_recovery_time_tracks_wal_tail_length(tmp_path, benchmark):
    sizes = (500, 2000, 8000)
    rows = []
    replay_counts = []
    for n in sizes:
        wal_dir = tmp_path / f"tail-{n}"
        engine, _, _ = _workload(wal_dir, n)
        engine.close()
        recovered, full_tail = _recover_time(wal_dir)
        assert len(recovered.wm) == n
        full_replayed = recovered.recovery_report.replayed_deltas
        replay_counts.append(full_replayed)

        ckpt_dir = tmp_path / f"ckpt-{n}"
        engine, _, _ = _workload(ckpt_dir, n)
        engine.checkpoint()
        engine.close()
        recovered, after_ckpt = _recover_time(ckpt_dir)
        assert len(recovered.wm) == n
        assert recovered.recovery_report.replayed_deltas == 0

        rows.append((
            n, full_replayed, f"{full_tail:.3f}", f"{after_ckpt:.3f}",
        ))
    print()
    print_table(
        "recovery time vs WAL tail length",
        ["WMEs", "tail deltas replayed", "full-replay (s)",
         "post-checkpoint (s)"],
        rows,
    )
    # The replayed-tail volume grows linearly with history; the
    # checkpoint resets it to zero (the timing columns are for the
    # table, the structural claim is what we gate on).
    assert replay_counts == list(sizes)

    benchmark(_recover_time, tmp_path / "tail-500")


@pytest.mark.parametrize("matcher", ["rete", "treat", "naive", "dips"])
def test_recovery_is_matcher_faithful_at_scale(tmp_path, matcher):
    from repro.durability.checkpoint import build_matcher

    engine = RuleEngine(
        matcher=build_matcher(matcher),
        durability=DurabilityConfig(tmp_path / matcher, fsync="off"),
    )
    engine.load(PROGRAM)
    with engine.batch():
        for i in range(1000):
            engine.make("reading", sensor=f"s{i % 7}", value=i % 100)
    recovered = RuleEngine.recover(tmp_path / matcher, durability=False)
    assert type(recovered.matcher) is type(engine.matcher)
    assert len(recovered.wm) == len(engine.wm)
    assert recovered.conflict_set_size() == engine.conflict_set_size()
