"""Batched bulk-load: grouped delta propagation vs. per-event (PR 2).

The acceptance claim: bulk-loading >= 10k WMEs into a set-oriented rule
through ``RuleEngine.batch()`` performs at least 2x fewer join tests
than per-event propagation — measured by the MatchStats counters — and
reaches byte-identical conflict sets and firing sequences.

Per-event, every employee WME right-activates the join and runs the
indexed equality test against its probe candidates; batched, the alpha
memory partitions the load by class once, the join probes its token
index once per *department group*, and probe-verified candidates skip
the indexed test entirely, so the surviving test count collapses to the
residual-test volume.  The S-node runs its Figure-3 stages once per
(department, batch) instead of once per employee.
"""

import time

from repro import MatchStats, RuleEngine
from repro.bench import print_table
from repro.rete import ReteNetwork

PROGRAM = """
(literalize dept name)
(literalize emp name dept salary)
(p dept-size
  (dept ^name <d>)
  { [emp ^dept <d>] <staff> }
  :test ((count <staff>) >= 1)
  -->
  (write staffed <d> (count <staff>)))
"""

N_EMPLOYEES = 10_000
N_DEPTS = 25


def _facts(count=N_EMPLOYEES):
    return [
        ("emp", {
            "name": f"e{i}",
            "dept": f"d{i % N_DEPTS}",
            "salary": 1000 + (i % 997),
        })
        for i in range(count)
    ]


def _load(batched, count=N_EMPLOYEES):
    stats = MatchStats()
    engine = RuleEngine(matcher=ReteNetwork(batched=batched), stats=stats)
    engine.load(PROGRAM)
    for d in range(N_DEPTS):
        engine.make("dept", name=f"d{d}")
    facts = _facts(count)
    start = time.perf_counter()
    if batched:
        engine.load_facts(facts)
    else:
        for wme_class, values in facts:
            engine.make(wme_class, **values)
    elapsed = time.perf_counter() - start
    return engine, stats, elapsed


def _conflict_signature(engine):
    return [
        (inst.rule.name, inst.recency_key())
        for inst in engine.conflict_set.ordered(engine.strategy)
        if inst.eligible()
    ]


def _firing_signature(engine):
    engine.run()
    return [(f.rule_name, f.time_tags) for f in engine.tracer.firings]


def test_batched_bulk_load_halves_join_tests(benchmark):
    batched_engine, batched_stats, batched_time = _load(batched=True)
    event_engine, event_stats, event_time = _load(batched=False)

    # Byte-identical conflict sets, then byte-identical firing sequences
    # and rule output.
    assert _conflict_signature(batched_engine) == _conflict_signature(
        event_engine
    )
    assert _firing_signature(batched_engine) == _firing_signature(
        event_engine
    )
    assert batched_engine.output == event_engine.output

    batched_tests = batched_stats.totals["join_tests_attempted"]
    event_tests = event_stats.totals["join_tests_attempted"]
    assert event_tests >= N_EMPLOYEES
    # The acceptance bar is 2x; the grouped probe actually does ~0 tests
    # here because the equality join is fully probe-verified.
    assert batched_tests * 2 <= event_tests

    # The S-node ran its stages once per (department, batch), not once
    # per employee.
    assert batched_stats.totals["snode_batch_reevals"] == N_DEPTS
    assert batched_stats.totals["batch_deltas_net"] == N_EMPLOYEES

    print()
    print_table(
        "batched bulk-load vs per-event (10k WMEs, 25 depts)",
        ["mode", "join tests", "group probes", "alpha acts",
         "snode reevals", "load time (s)"],
        [
            ("per-event", event_tests,
             event_stats.totals["group_probes"],
             event_stats.totals["alpha_activations"],
             event_stats.totals["snode_batch_reevals"],
             f"{event_time:.3f}"),
            ("batched", batched_tests,
             batched_stats.totals["group_probes"],
             batched_stats.totals["alpha_activations"],
             batched_stats.totals["snode_batch_reevals"],
             f"{batched_time:.3f}"),
        ],
    )

    benchmark(_load, True, 1000)


def test_batched_high_churn_matches_per_event(benchmark):
    """Mixed make/modify/remove batches stay equivalent and cheaper."""
    def churn(batched):
        stats = MatchStats()
        engine = RuleEngine(
            matcher=ReteNetwork(batched=batched), stats=stats
        )
        engine.load(PROGRAM)
        for d in range(5):
            engine.make("dept", name=f"d{d}")
        staff = engine.load_facts(
            ("emp", {"name": f"e{i}", "dept": f"d{i % 5}", "salary": i})
            for i in range(500)
        )
        with engine.batch():
            for i, wme in enumerate(staff):
                if i % 3 == 0:
                    engine.remove(wme)
                elif i % 3 == 1:
                    engine.modify(wme, salary=wme.get("salary") + 1)
                else:
                    # Transient scratch fact: netted out of the flush.
                    scratch = engine.make(
                        "emp", name=f"tmp{i}", dept=wme.get("dept"),
                        salary=0,
                    )
                    engine.remove(scratch)
        return engine, stats

    batched_engine, batched_stats = churn(True)
    event_engine, event_stats = churn(False)
    assert _conflict_signature(batched_engine) == _conflict_signature(
        event_engine
    )
    assert _firing_signature(batched_engine) == _firing_signature(
        event_engine
    )
    assert (
        batched_stats.totals["join_tests_attempted"]
        <= event_stats.totals["join_tests_attempted"]
    )
    assert batched_stats.totals["deltas_coalesced"] > 0

    benchmark(churn, True)
