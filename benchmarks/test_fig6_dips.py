"""Experiment F6 — Figure 6: set-oriented DIPS.

Rebuilds the figure's COND tables and runs the SOI-retrieval query,
printing the grouped relation the paper shows (two groups, E tags 2
and 4, each with W tags {1, 3}).  The bench times the whole
WM-update + query-match path of the DBMS back end.
"""

from repro import RuleEngine
from repro.bench import print_table
from repro.dips import DipsMatcher

RULE_1 = """
(literalize E name salary)
(literalize W name job)
(p rule-1
  (E ^name <x> ^salary <s>)
  [W ^name <x> ^job clerk]
  -->
  (write matched))
"""


def build_figure6():
    matcher = DipsMatcher()
    engine = RuleEngine(matcher=matcher)
    engine.load(RULE_1)
    engine.make("W", name="Mike", job="clerk")
    engine.make("E", name="Mike", salary=10000)
    engine.make("W", name="Mike", job="clerk")
    engine.make("E", name="Mike", salary=15000)
    return engine, matcher


def test_figure6_soi_relation(benchmark):
    engine, matcher = benchmark(build_figure6)
    rows = matcher.soi_rows("rule-1")
    table_rows = [
        (row["tag_1"], ", ".join(str(t) for t in sorted(row["tags_2"])))
        for row in sorted(rows, key=lambda r: r["tag_1"])
    ]
    print_table(
        "F6 / Figure 6 — SOI relation from the COND tables "
        "(paper: groups {2:[1,3]} and {4:[1,3]})",
        ["COND-E.WME-TAG", "COND-W.WME-TAGS"],
        table_rows,
    )
    assert table_rows == [(2, "1, 3"), (4, "1, 3")]


def test_figure6_cond_table_state(benchmark):
    engine, matcher = build_figure6()
    cond_e = matcher.store.cond_table("E").scan()
    cond_w = matcher.store.cond_table("W").scan()
    print_table(
        "F6 — COND-E rows (template + instances)",
        ["cen", "name", "salary", "rce", "wme_tag"],
        [
            (r["cen"], str(r["name"]), str(r["salary"]), r["rce"],
             str(r["wme_tag"]))
            for r in cond_e
        ],
    )
    print_table(
        "F6 — COND-W rows (template + instances)",
        ["cen", "name", "job", "rce", "wme_tag"],
        [
            (r["cen"], str(r["name"]), str(r["job"]), r["rce"],
             str(r["wme_tag"]))
            for r in cond_w
        ],
    )
    assert len(cond_e) == 3  # 1 template + 2 instances
    assert len(cond_w) == 3

    benchmark(matcher.soi_rows, "rule-1")


def test_figure6_dips_scaling(benchmark):
    """DBMS matching cost as the employee table grows."""

    def run(size):
        matcher = DipsMatcher()
        engine = RuleEngine(matcher=matcher)
        engine.load(RULE_1)
        for index in range(size):
            engine.make("W", name=f"emp{index}", job="clerk")
            engine.make("E", name=f"emp{index}", salary=1000 * index)
        return len(engine.conflict_set.of_rule("rule-1"))

    assert run(10) == 10
    benchmark(run, 10)
