"""Experiment F3 — Figure 3: the S-node algorithm under token churn.

Scripts make/remove streams through a set-oriented rule with an
aggregate test and reports the mark traffic (<S,+>, <S,->, <S,time>)
the S-node emits, then times the incremental maintenance — the point
of the γ-memory design is that each token costs O(group lookup +
aggregate delta), not a recomputation.
"""

from repro.bench import print_table
from repro.lang.parser import parse_rule
from repro.rete import ReteNetwork
from repro.wm import WorkingMemory

RULE = """
(p watch
  { [item ^qty <q>] <Items> }
  :test ((sum <Items> ^qty) >= 10)
  -->
  (write x))
"""


class MarkCounter:
    def __init__(self):
        self.marks = {"+": 0, "-": 0, "time": 0}

    def insert(self, inst):
        self.marks["+"] += 1

    def retract(self, inst):
        self.marks["-"] += 1

    def reposition(self, inst):
        self.marks["time"] += 1


def drive(churn):
    wm = WorkingMemory()
    counter = MarkCounter()
    net = ReteNetwork()
    net.set_listener(counter)
    net.attach(wm)
    net.add_rule(parse_rule(RULE))
    live = []
    for index in range(churn):
        if index % 3 == 2 and live:
            wm.remove(live.pop(0))
        else:
            live.append(wm.make("item", qty=(index % 7) + 1))
    return counter, net


def test_figure3_mark_traffic(benchmark):
    counter, net = benchmark(drive, 120)
    rows = [
        ("<S,+> (activations)", counter.marks["+"]),
        ("<S,-> (deactivations)", counter.marks["-"]),
        ("<S,time> (repositions)", counter.marks["time"]),
        ("S-node activations", net.stats.snode_activations),
    ]
    print_table(
        "F3 / Figure 3 — S-node mark traffic over 120 WM changes",
        ["mark", "count"],
        rows,
    )
    # The SOI toggles across the sum threshold as items come and go.
    assert counter.marks["+"] >= 1
    assert counter.marks["+"] - counter.marks["-"] in (0, 1)
    # Every WM change reached the S-node exactly once per token.
    assert net.stats.snode_activations > 0


def test_figure3_incremental_vs_recompute(benchmark):
    """Incremental aggregate upkeep beats recomputing sums per change."""
    import time

    def incremental(n):
        drive(n)

    benchmark(incremental, 150)
