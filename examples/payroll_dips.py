#!/usr/bin/env python
"""Section 8 in action: rules matched by a relational DBMS (DIPS).

The engine runs with the :class:`repro.dips.DipsMatcher` back end: every
WM change updates COND tables in the embedded relational engine, and
instantiations come back from the Figure 6 SQL query.  The script dumps
the COND tables and the grouped SOI relation so you can see the
paper's Figure 6 live, then fires a set-oriented raise rule.

Run:  python examples/payroll_dips.py
"""

from repro import RuleEngine
from repro.dips import DipsMatcher

PROGRAM = """
(literalize E name salary)
(literalize W name job)
(literalize policy floor)

; The paper's rule-1: each employee record grouped with ALL the
; matching clerk work-assignments.
(p rule-1
  (E ^name <x> ^salary <s>)
  { [W ^name <x> ^job clerk] <Jobs> }
  -->
  (write employee <x> salary <s> has (count <Jobs>) clerk postings))

; A set-oriented payroll action: give every employee with salary below
; the floor a raise, in one firing.
(p raise-underpaid
  (policy ^floor <f>)
  { [E ^salary < <f>] <Underpaid> }
  -->
  (write raising (count <Underpaid>) salaries to <f>)
  (set-modify <Underpaid> ^salary <f>))
"""


def dump_table(matcher, wme_class):
    table = matcher.store.cond_table(wme_class)
    print(f"\n{table.name}:")
    for row in table.scan():
        cells = ", ".join(f"{k}={v!r}" for k, v in row.items())
        print(f"  {cells}")


def main():
    matcher = DipsMatcher()
    engine = RuleEngine(matcher=matcher)
    engine.load(PROGRAM)

    # Figure 6's working memory.
    engine.make("W", name="Mike", job="clerk")   # tag 1
    engine.make("E", name="Mike", salary=10000)  # tag 2
    engine.make("W", name="Mike", job="clerk")   # tag 3
    engine.make("E", name="Mike", salary=15000)  # tag 4

    dump_table(matcher, "E")
    dump_table(matcher, "W")

    print("\nSOI-retrieval query (generalised Figure 6):")
    print(" ", matcher.soi_query("rule-1"))
    print("\nSOI relation:")
    for row in matcher.soi_rows("rule-1"):
        print("  ", row)

    engine.make("policy", floor=12000)
    engine.run(limit=10)
    print("\nrule output:")
    for line in engine.output:
        print("  ", line)
    print("\nsalaries now:",
          sorted(w.get("salary") for w in engine.wm.of_class("E")))


if __name__ == "__main__":
    main()
