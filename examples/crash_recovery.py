#!/usr/bin/env python
"""Crash and recover: WAL replay rebuilds the exact session state.

Runs a durable inventory session, tears the log mid-append the way a
power cut would (a torn final record), then recovers twice:

1. straight from the write-ahead log — every delta batch and firing
   replays through the batched propagation path, the torn tail is
   dropped, and refraction survives (nothing re-fires);
2. from a checkpoint plus an empty tail — the checkpoint truncates the
   log, so recovery restores the snapshot instead of replaying history.

Run:  python examples/crash_recovery.py
"""

import shutil
import tempfile
import time
from pathlib import Path

from repro import DurabilityConfig, RuleEngine
from repro.durability import tear_tail

PROGRAM = """
(literalize bin sku count)
(literalize order sku qty)
(p short
  (order ^sku <s> ^qty <q>)
  (bin ^sku <s> ^count {<c> < <q>})
  -->
  (write short <s> need <q> have <c>))
"""


def build_session(wal_dir):
    engine = RuleEngine(durability=DurabilityConfig(wal_dir, fsync="off"))
    engine.load(PROGRAM)
    with engine.batch():
        for i in range(500):
            engine.make("bin", sku=f"sku{i}", count=i % 10)
    engine.make("order", sku="sku3", qty=7)
    engine.make("order", sku="sku42", qty=1)
    fired = engine.run()
    return engine, fired


def state(engine):
    return sorted(
        (w.time_tag, w.wme_class, tuple(sorted(w.as_dict().items())))
        for w in engine.wm
    )


def main():
    root = Path(tempfile.mkdtemp(prefix="repro-crash-"))
    try:
        wal_dir = root / "wal"
        engine, fired = build_session(wal_dir)
        print(f"session: 502 WMEs, {fired} firing(s): {engine.output}")
        survivor = state(engine)

        # Crash: the process dies mid-append.  tear_tail() leaves the
        # final WAL record half-written, exactly like a power cut.
        engine.make("order", sku="sku5", qty=9)  # never reaches disk whole
        tear_tail(wal_dir, keep=0.4)
        print("crash: final append torn at 40%")

        start = time.perf_counter()
        recovered = RuleEngine.recover(wal_dir, durability=False)
        elapsed = time.perf_counter() - start
        report = recovered.recovery_report
        print(f"recovered in {elapsed * 1000:.1f} ms: {report}")
        assert report.tail_damaged, "the torn record must be detected"
        assert state(recovered) == survivor, "pre-crash state survives"
        assert recovered.run() == 0, "refraction survives: no re-firing"
        print("recovered state matches; nothing re-fired\n")

        # Checkpoint: snapshot + truncate, so recovery skips the replay.
        ckpt_dir = root / "ckpt"
        engine, _ = build_session(ckpt_dir)
        engine.checkpoint()
        engine.close()
        start = time.perf_counter()
        recovered = RuleEngine.recover(ckpt_dir, durability=False)
        elapsed = time.perf_counter() - start
        report = recovered.recovery_report
        print(f"after checkpoint: recovered in {elapsed * 1000:.1f} ms: "
              f"{report}")
        assert report.replayed_deltas == 0, "checkpoint absorbed the tail"
        assert state(recovered) == state(engine)
        print("checkpoint restore replayed nothing; state matches")
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    main()
