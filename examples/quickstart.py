#!/usr/bin/env python
"""Quickstart: the paper's team domain in a dozen lines.

Run:  python examples/quickstart.py
"""

from repro import RuleEngine


def main():
    engine = RuleEngine()
    engine.load(
        """
        (literalize player name team)

        ; A regular OPS5 rule: one firing per A/B pair.
        (p announce-pair
          (player ^name <n1> ^team A)
          (player ^name <n2> ^team B)
          -->
          (write <n1> vs <n2>))

        ; A set-oriented rule: one firing covering the whole roster.
        (p roster-summary
          { [player ^team <t>] <Everyone> }
          -->
          (write roster holds (count <Everyone>) players)
          (foreach <t>
            (write team <t>)))
        """
    )

    for team, name in [
        ("A", "Jack"), ("A", "Janice"), ("B", "Sue"), ("B", "Jack"),
    ]:
        engine.make("player", team=team, name=name)

    fired = engine.run(limit=20)
    print(f"fired {fired} rules")
    for line in engine.output:
        print(" ", line)

    print("\nconflict-set inserts:", engine.conflict_set.inserts)
    print("WM size:", len(engine.wm))


if __name__ == "__main__":
    main()
