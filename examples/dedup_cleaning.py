#!/usr/bin/env python
"""Data cleaning with set-oriented rules: deduplication at scale.

Section 7.2's ``RemoveDups`` applied as an ETL-style cleaning pass over
a synthetic customer feed, contrasted with the tuple-oriented
equivalent to show the firing-count difference the paper argues for.

Run:  python examples/dedup_cleaning.py [records]
"""

import random
import sys

from repro import RuleEngine

SET_PROGRAM = """
(literalize record email region serial)
(p dedup-set
  { [record ^email <e> ^region <r>] <R> }
  :scalar (<e> <r>)
  :test ((count <R>) > 1)
  -->
  (bind <keep> true)
  (foreach <R> descending
    (if (<keep> == true)
      (bind <keep> false)
     else
      (remove <R>))))
"""

# The tuple-oriented formulation needs one firing per duplicate pair
# and an explicit serial number so a record cannot pair with itself —
# the paper's footnote ("the reader is encouraged to attempt to express
# this task in regular OPS5") is well earned.
TUPLE_PROGRAM = """
(literalize record email region serial)
(p dedup-tuple
  (record ^email <e> ^region <r> ^serial <s>)
  { (record ^email <e> ^region <r> ^serial < <s>) <Old> }
  -->
  (remove <Old>))
"""


def feed(records, duplicate_rate=0.4, seed=11):
    rng = random.Random(seed)
    rows = []
    for index in range(records):
        rows.append((f"user{index}@example.com",
                     rng.choice(["emea", "apac", "amer"])))
    extras = [rng.choice(rows) for _ in range(int(records * duplicate_rate))]
    combined = rows + extras
    rng.shuffle(combined)
    return combined


def run(program, rows):
    engine = RuleEngine()
    engine.load(program)
    for serial, (email, region) in enumerate(rows):
        engine.make("record", email=email, region=region, serial=serial)
    fired = engine.run(limit=100000)
    return engine, fired


def main():
    records = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    rows = feed(records)
    duplicates = len(rows) - len(set(rows))
    print(f"feed: {len(rows)} records, {duplicates} duplicates")

    set_engine, set_fired = run(SET_PROGRAM, rows)
    print(f"set-oriented dedup:   {set_fired:5d} firings "
          f"-> {len(set_engine.wm)} clean records")

    tuple_engine, tuple_fired = run(TUPLE_PROGRAM, rows)
    print(f"tuple-oriented dedup: {tuple_fired:5d} firings "
          f"-> {len(tuple_engine.wm)} clean records")

    assert len(set_engine.wm) == len(tuple_engine.wm) == len(set(rows))
    print(f"\nfirings saved by set orientation: "
          f"{tuple_fired - set_fired}")


if __name__ == "__main__":
    main()
