#!/usr/bin/env python
"""Batched bulk-load: one delta-set through the network, not 10k events.

Loads a 10,000-employee payroll into a set-oriented rule twice — once
per event, once through ``RuleEngine.batch()`` / ``load_facts()`` — and
prints the match-work counters side by side.  The batched pass
partitions the load by class in the alpha network, probes each join
index once per department group, and runs every S-node's Figure-3
stages once per (department, batch).

Run:  python examples/bulk_load.py
"""

import time

from repro import MatchStats, RuleEngine
from repro.rete import ReteNetwork

PROGRAM = """
(literalize dept name)
(literalize emp name dept salary)
(p dept-size
  (dept ^name <d>)
  { [emp ^dept <d>] <staff> }
  :test ((count <staff>) >= 1)
  -->
  (write staffed <d> (count <staff>)))
"""

EMPLOYEES = 10_000
DEPTS = 25


def load(batched):
    stats = MatchStats()
    engine = RuleEngine(matcher=ReteNetwork(batched=batched), stats=stats)
    engine.load(PROGRAM)
    for d in range(DEPTS):
        engine.make("dept", name=f"d{d}")
    facts = [
        ("emp", {"name": f"e{i}", "dept": f"d{i % DEPTS}", "salary": i})
        for i in range(EMPLOYEES)
    ]
    start = time.perf_counter()
    if batched:
        engine.load_facts(facts)
    else:
        for wme_class, values in facts:
            engine.make(wme_class, **values)
    elapsed = time.perf_counter() - start
    fired = engine.run()
    return engine, stats, elapsed, fired


def main():
    per_event, event_stats, event_time, event_fired = load(batched=False)
    batched, batch_stats, batch_time, batch_fired = load(batched=True)

    assert batched.output == per_event.output, "semantics must not change"
    assert batch_fired == event_fired

    print(f"loaded {EMPLOYEES} employees into {DEPTS} departments; "
          f"{batch_fired} set-oriented firings either way\n")
    header = f"{'counter':<28}{'per-event':>12}{'batched':>12}"
    print(header)
    print("-" * len(header))
    for label, key in [
        ("join tests attempted", "join_tests_attempted"),
        ("alpha activations", "alpha_activations"),
        ("index probes", "index_probes"),
        ("group probes", "group_probes"),
        ("S-node reevaluations", "snode_batch_reevals"),
        ("deltas coalesced", "deltas_coalesced"),
    ]:
        print(f"{label:<28}{event_stats.totals[key]:>12}"
              f"{batch_stats.totals[key]:>12}")
    print(f"{'load wall time (s)':<28}{event_time:>12.3f}"
          f"{batch_time:>12.3f}")


if __name__ == "__main__":
    main()
