#!/usr/bin/env python
"""Tournament management — the paper's motivating domain, end to end.

Demonstrates every set-oriented construct on one scenario:

* ``SwitchTeams`` (Figure 5) rebalances the two sides in a single
  firing when their sizes match;
* ``GroupByTeam`` (Figure 4) prints the roster hierarchically with
  nested ``foreach``;
* ``RemoveDups`` (Figure 5) cleans duplicate registrations, keeping
  each player's most recent entry;
* an aggregate-gated rule closes registration once the roster reaches
  capacity — the direct second-order match of section 4.2.

Run:  python examples/team_tournament.py
"""

from repro import RuleEngine

PROGRAM = """
(literalize player name team)
(literalize registration state capacity)

; Close registration the moment the roster is full — no counter WME,
; no counting loop: the cardinality is matched directly.
(p close-registration
  { (registration ^state open ^capacity <cap>) <R> }
  { [player] <Roster> }
  :test ((count <Roster>) >= <cap>)
  -->
  (write registration closed at (count <Roster>) players)
  (modify <R> ^state closed))

; Duplicate registrations: keep the most recent per (name, team).
(p remove-duplicates
  (registration ^state closed)
  { [player ^name <n> ^team <t>] <P> }
  :scalar (<n> <t>)
  :test ((count <P>) > 1)
  -->
  (write dropping (count <P>) entries for <n> down to 1)
  (bind <first> true)
  (foreach <P> descending
    (if (<first> == true)
      (bind <first> false)
     else
      (remove <P>))))

; Print the final roster, grouped by team.
(p print-roster
  (registration ^state closed)
  [player ^team <t> ^name <n>]
  -->
  (foreach <t> ascending
    (write team <t>)
    (foreach <n> ascending
      (write |  -| <n>))))
"""


def main():
    engine = RuleEngine()
    engine.load(PROGRAM)
    engine.make("registration", state="open", capacity=6)

    entries = [
        ("A", "Jack"), ("A", "Janice"), ("B", "Sue"),
        ("B", "Jack"), ("B", "Sue"),  # Sue registered twice!
        ("A", "Pat"),
    ]
    for team, name in entries:
        engine.make("player", team=team, name=name)

    fired = engine.run(limit=50)
    print(f"fired {fired} rules\n")
    for line in engine.output:
        print(line)

    roster = sorted((w.get("team"), w.get("name"))
                    for w in engine.wm.of_class("player"))
    print("\nfinal roster:", roster)
    assert roster.count(("B", "Sue")) == 1, "duplicate should be gone"


if __name__ == "__main__":
    main()
