#!/usr/bin/env python
"""Aggregate-driven monitoring: second-order tests on live data.

Section 4.2's point — matching on ``count``/``min``/``max``/``avg``
directly instead of maintaining counter WMEs — applied to a warehouse
monitor.  The S-node keeps every aggregate current incrementally as
stock moves, so the alert rules activate and deactivate by themselves.

Run:  python examples/inventory_monitor.py
"""

from repro import RuleEngine

PROGRAM = """
(literalize stock sku depot qty)
(literalize alert kind sku)

; Low total stock for a SKU across all depots (group by SKU via
; :scalar, sum over the member WMEs).
(p low-stock
  { [stock ^sku <sku> ^qty <q>] <Lots> }
  :scalar (<sku>)
  :test ((sum <Lots> ^qty) < 20)
  -(alert ^kind low ^sku <sku>)
  -->
  (write ALERT low stock for <sku> total (sum <Lots> ^qty))
  (make alert ^kind low ^sku <sku>))

; Imbalanced distribution: one depot holds far more than another.
(p imbalance
  { [stock ^sku <sku> ^qty <q>] <Lots> }
  :scalar (<sku>)
  :test (((max <Lots> ^qty) - (min <Lots> ^qty)) > 50)
  -(alert ^kind skew ^sku <sku>)
  -->
  (write ALERT skewed distribution for <sku>)
  (make alert ^kind skew ^sku <sku>))

; Clear a low-stock alert once replenished.
(p clear-low
  { (alert ^kind low ^sku <sku>) <A> }
  { [stock ^sku <sku> ^qty <q>] <Lots> }
  :test ((sum <Lots> ^qty) >= 20)
  -->
  (write cleared low-stock alert for <sku>)
  (remove <A>))
"""


def main():
    engine = RuleEngine()
    engine.load(PROGRAM)

    print("initial stock positions:")
    engine.make("stock", sku="bolt", depot="north", qty=5)
    engine.make("stock", sku="bolt", depot="south", qty=8)
    engine.make("stock", sku="gear", depot="north", qty=90)
    engine.make("stock", sku="gear", depot="south", qty=10)
    engine.run(limit=20)
    for line in engine.output:
        print("  ", line)

    print("\nreplenishing bolts at the east depot:")
    engine.tracer.clear()
    engine.make("stock", sku="bolt", depot="east", qty=40)
    engine.run(limit=20)
    for line in engine.output:
        print("  ", line)

    alerts = sorted(
        (w.get("kind"), w.get("sku")) for w in engine.wm.of_class("alert")
    )
    print("\nalerts still standing:", alerts)


if __name__ == "__main__":
    main()
